"""Process-wide shared frame cache: render every frame once per process.

A sweep runs many methods over the same clips — fig6 alone runs 13
methods over 3 clips — and every method walks its clip from frame 0.
The per-renderer cache cannot help across methods (it is cold again by
the time the next method starts), so without sharing, each synthetic
frame is rasterised once *per method* in every worker.  Frame synthesis
stands in for the camera in this reproduction; the paper's pipeline is
supposed to be the bottleneck, not the frame source.

:class:`FrameStore` is a byte-budgeted LRU shared by every
:class:`~repro.video.render.FrameRenderer` in the process.  Keys are
``(scene fingerprint, frame_index)``: the fingerprint digests everything
that determines a scene's pixel stream (scenario config + seed), so two
renderers built from the same spec — e.g. the worker clip LRU rebuilding
a clip, or two methods sharing a suite clip — read and write the same
entries.  Rendering is deterministic, so a stored frame is bit-identical
to a fresh render; the store can only change *when* pixels are computed,
never *what* they are.

The store is disabled until given a budget (``max_bytes == 0`` makes
``get``/``put`` no-ops), so existing single-run paths pay nothing unless
an experiment opts in via ``PipelineConfig.frame_store_mb`` or the
``--frame-store-mb`` CLI flag.  See DESIGN.md §9.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import pickle
import struct
import tempfile
import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

try:  # POSIX-only plumbing for the cross-process store.
    import fcntl
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None
    _shm = None

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (render imports us)
    from repro.video.scene import Scene

BYTES_PER_MB = 1 << 20


def scene_fingerprint(scene: "Scene") -> str:
    """Stable digest of everything that determines a scene's pixels.

    Frames are a pure function of ``(scenario config, scene seed,
    frame_index)``; the config's dataclass ``repr`` covers every field,
    including nested spawn specs and phases, so two scenes with equal
    fingerprints render bit-identical frame streams.  The digest is
    content-based (not ``id``-based) on purpose: worker processes rebuild
    clips from specs and must land on the same keys as the parent.
    """
    payload = repr((scene.config, scene.seed))
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()


class FrameStore:
    """Byte-budgeted LRU of rendered frames, shared across renderers.

    Thread-safe: the live executor renders from multiple threads through
    one process-wide instance.  Accounting is by ``frame.nbytes`` — the
    budget bounds pixel payload, not Python object overhead, which for
    float32 frames is negligible in comparison.

    Stored frames are marked read-only: every renderer (and every method
    sharing the store) hands out the *same* array object, so an in-place
    mutation would silently corrupt other methods' inputs.
    """

    # Metric-name prefix for the obs counters.  Subclasses that recycle
    # this LRU for other payloads (the derived-artifact store) override
    # it so their traffic is attributed to the right subsystem.
    _METRIC_PREFIX = "framestore"

    def __init__(self, max_bytes: int = 0) -> None:
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative (0 disables)")
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple[str, int], np.ndarray] = OrderedDict()
        self.max_bytes = int(max_bytes)
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.evicted_bytes = 0
        self.set_obs(None)

    # -- observability -------------------------------------------------------

    def set_obs(self, obs=None) -> None:
        """Attach telemetry for the hit/miss/eviction counters (None detaches).

        Mirrors ``FrameRenderer.set_obs``: instruments are resolved once,
        so the hot path pays one no-op method call when observability is
        off.  The sweep engine additionally funnels per-shard deltas to
        the parent sink (workers cannot share it) — see
        ``repro.parallel.engine``.
        """
        from repro.obs import NULL_TELEMETRY

        telemetry = obs if obs is not None else NULL_TELEMETRY
        self._obs_hit = telemetry.counter(f"{self._METRIC_PREFIX}.hit")
        self._obs_miss = telemetry.counter(f"{self._METRIC_PREFIX}.miss")
        self._obs_evicted = telemetry.counter(f"{self._METRIC_PREFIX}.evicted_bytes")

    # -- core ----------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self.max_bytes > 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, fingerprint: str, frame_index: int) -> np.ndarray | None:
        """The stored frame, or ``None``.  Disabled stores never count."""
        if self.max_bytes <= 0:
            return None
        key = (fingerprint, frame_index)
        with self._lock:
            frame = self._entries.get(key)
            if frame is None:
                self.misses += 1
                self._obs_miss.inc()
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            self._obs_hit.inc()
            return frame

    def put(self, fingerprint: str, frame_index: int, frame: np.ndarray) -> np.ndarray:
        """Insert a freshly rendered frame, evicting LRU entries over budget.

        A frame larger than the whole budget is not stored (it would evict
        everything and then be evicted itself by the next insert).  On a
        racing double-insert the first entry wins — both arrays hold
        identical bytes, so the choice is invisible to callers.

        Returns the canonical array for the key: the stored frame when the
        insert (or an earlier racing one) succeeded, the caller's own array
        untouched when nothing was stored.  Only frames actually stored are
        frozen — a rejected duplicate must stay writable, because the
        losing caller still owns it.
        """
        if self.max_bytes <= 0:
            return frame
        nbytes = int(frame.nbytes)
        if nbytes > self.max_bytes:
            return frame
        key = (fingerprint, frame_index)
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                return existing
            frame.setflags(write=False)
            self._entries[key] = frame
            self.current_bytes += nbytes
            self._evict_over_budget()
        return frame

    def _evict_over_budget(self) -> None:
        """Evict least-recently-used entries until within budget (lock held)."""
        while self.current_bytes > self.max_bytes and self._entries:
            _, evicted = self._entries.popitem(last=False)
            nbytes = int(evicted.nbytes)
            self.current_bytes -= nbytes
            self.evictions += 1
            self.evicted_bytes += nbytes
            self._obs_evicted.inc(nbytes)

    # -- management ----------------------------------------------------------

    def set_budget(self, max_bytes: int) -> None:
        """Change the byte budget; shrinking evicts LRU entries immediately."""
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative (0 disables)")
        with self._lock:
            self.max_bytes = int(max_bytes)
            if self.max_bytes == 0:
                # Disabling drops the payload: a disabled store should not
                # pin tens of megabytes of frames nobody can reach.
                self._entries.clear()
                self.current_bytes = 0
            else:
                self._evict_over_budget()

    def clear(self) -> None:
        """Drop every entry (budget and counters are kept)."""
        with self._lock:
            self._entries.clear()
            self.current_bytes = 0

    def stats(self) -> dict:
        """Counter snapshot, e.g. for bench documents and summaries.

        Taken under the store lock, so a snapshot is internally consistent
        even while other threads hit the store — callers that need deltas
        (the sweep engine's per-shard accounting) must diff two snapshots
        instead of reading the bare counters twice.  ``lease_waits`` is
        always 0 for the in-process store; it counts cross-process render
        leases and only moves on :class:`SharedFrameStore`.
        """
        with self._lock:
            return {
                "max_bytes": self.max_bytes,
                "current_bytes": self.current_bytes,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "evicted_bytes": self.evicted_bytes,
                "lease_waits": 0,
            }


# The process-wide default instance.  Renderers constructed without an
# explicit store resolve this at render time, so configuring it *after*
# clips were built still takes effect — the sweep engine relies on that
# for its inline (jobs=1) path, where the caller owns the clips.
# ``install_store`` can overlay the private instance with a
# cross-process :class:`SharedFrameStore`; sweep workers do exactly that
# once per sweep so every renderer in the fleet reads one shared map.
_default_store = FrameStore(0)
_installed_store: "FrameStore | SharedFrameStore | None" = None
_default_lock = threading.Lock()


def default_store() -> "FrameStore | SharedFrameStore":
    """The process-wide store (disabled until configured).

    Returns the installed overlay store when one is active (a sweep
    worker attached to the parent's shared map), else the process-private
    instance.
    """
    installed = _installed_store
    return installed if installed is not None else _default_store


def install_store(
    store: "FrameStore | SharedFrameStore | None",
) -> "FrameStore | SharedFrameStore | None":
    """Overlay (or, with ``None``, remove) the process-default store.

    The private store and its budget are left untouched underneath, so
    uninstalling restores exactly the pre-overlay behaviour.  Returns the
    previously installed overlay (``None`` if the private store was
    active) so callers can restore it.
    """
    global _installed_store
    with _default_lock:
        previous = _installed_store
        _installed_store = store
    return previous


def configure_default(max_bytes: int) -> "FrameStore | SharedFrameStore":
    """Set the active process-wide store's budget and return it.

    Called from the sweep engine (parent inline path) and the worker
    store bootstrap, so one ``--frame-store-mb`` knob reaches every
    process of a sweep.  Last caller wins; with one budget per sweep —
    enforced at spec construction — that is the only caller.
    """
    with _default_lock:
        store = _installed_store if _installed_store is not None else _default_store
    store.set_budget(max_bytes)
    return store


# -- cross-process shared store ----------------------------------------------
#
# A process pool re-renders what the in-process store already paid for:
# each spawn worker used to own a private LRU, so a fleet of N workers
# rendered every frame up to N times.  ``SharedFrameStore`` keeps the
# ``FrameStore`` API but moves the payload into POSIX shared memory:
#
# - every frame lives in its own read-only ``multiprocessing.shared_memory``
#   segment, created exactly once fleet-wide;
# - a small control segment holds the pickled index (key -> segment name,
#   shape, dtype, LRU order, byte accounting), mutated only under an
#   ``fcntl.flock`` file lock, so first-insert-wins is atomic across
#   processes;
# - a *render lease* makes first-insert-wins also render-once: the first
#   process to miss a frame writes a lease entry, later processes wait for
#   the fill instead of rendering a duplicate (with a timeout so a crashed
#   renderer cannot stall the fleet);
# - eviction is owner-driven: workers only read and insert, the parent
#   (the sweep engine) reclaims over-budget segments between shards, so a
#   worker can never unlink a segment another process is about to map;
# - a process-local front LRU serves hot frames without touching the lock
#   or re-attaching segments.
#
# Memory safety: numpy views handed out by ``get`` are backed directly by
# the segment mmap (``base`` is the mmap object), and closing a segment
# unmaps it under any live views.  Every attached segment is therefore
# kept in a process-lifetime registry and never closed; ``unlink`` (owner
# teardown) only removes the name, the mapping survives until each
# process exits.  See DESIGN.md §9 for the lifecycle diagram.

_INDEX_HEADER = struct.Struct("<Q")
_LEASE_TIMEOUT_S = 5.0
_LEASE_POLL_S = 0.002
_FRONT_CAPACITY = 512

# Process-lifetime registry of attached segments (see memory-safety note
# above): maps segment name -> SharedMemory.  Entries are never removed;
# dropping one would let SharedMemory.__del__ unmap a buffer that served
# views may still reference.
_attached_segments: dict[str, "_shm.SharedMemory"] = {}
_attached_lock = threading.Lock()


def shared_store_available() -> bool:
    """Whether this platform can host a cross-process store."""
    return fcntl is not None and _shm is not None


def _untrack(shm: "_shm.SharedMemory") -> None:
    """Remove ``shm`` from this process's resource tracker.

    The store manages segment lifetime itself (owner unlinks via the
    index, with an ``atexit`` fallback); per-process tracker entries
    would otherwise warn about — and double-unlink — segments the parent
    already reclaimed.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


def _retrack(name: str) -> None:
    """Re-register a segment right before unlinking it.

    ``SharedMemory.unlink`` unregisters internally; without the paired
    register the tracker process logs a KeyError at exit for every
    segment the store reclaimed.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.register("/" + name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


def _attach_segment(name: str) -> "_shm.SharedMemory":
    """Attach (or reuse the process-wide attachment of) a segment."""
    with _attached_lock:
        shm = _attached_segments.get(name)
        if shm is None:
            shm = _shm.SharedMemory(name=name)
            _untrack(shm)
            _attached_segments[name] = shm
    return shm


@dataclass(frozen=True)
class StoreToken:
    """Picklable handle to a live :class:`SharedFrameStore`.

    Crosses the process boundary inside ``ShardSpec.store``; a worker
    attaches with :meth:`SharedFrameStore.attach`.  ``control`` names the
    index segment, ``lock_path`` the flock file that serialises index
    mutations fleet-wide.
    """

    control: str
    lock_path: str


class _ReadyEntry:
    """Index entry states (stored as tuples for compact pickling)."""

    READY = "r"
    LEASE = "l"


class SharedFrameStore:
    """Cross-process :class:`FrameStore`: one render fleet-wide per frame.

    Same API and thread-safety contract as :class:`FrameStore` —
    ``get``/``put``/``stats``/``set_budget``/``clear`` — so renderers,
    the serve layer, and the sweep engine treat both interchangeably.
    ``hits``/``misses``/``lease_waits`` count *this process's* traffic
    (per-shard deltas stay meaningful); ``entries``/``current_bytes``
    and the eviction counters describe the fleet-wide map.

    Construct with :meth:`create` (the owner: evicts, unlinks, cleans
    up) or :meth:`attach` (workers: read and insert only).
    """

    # Overridable for subclasses hosting other payloads (the derived-
    # artifact store): segment names must not collide between two stores
    # live in one sweep, and metrics must land on the right subsystem.
    _METRIC_PREFIX = "framestore"
    _SEGMENT_PREFIX = "reprofs"

    def __init__(self, token: StoreToken, owner: bool) -> None:
        if not shared_store_available():  # pragma: no cover - POSIX-only
            raise RuntimeError("shared frame store needs fcntl + shared_memory")
        self.token = token
        self.owner = owner
        self._mutex = threading.Lock()
        self._control = _attach_segment(token.control)
        self._lock_file = open(token.lock_path, "a+b")
        self._front: OrderedDict[tuple[str, int], np.ndarray] = OrderedDict()
        self._max_bytes_cache = 0
        self.hits = 0
        self.misses = 0
        self.lease_waits = 0
        self._closed = False
        self.set_obs(None)
        if owner:
            atexit.register(self._atexit_cleanup)

    # -- construction --------------------------------------------------------

    @classmethod
    def create(cls, max_bytes: int, control_capacity: int = 4 << 20) -> "SharedFrameStore":
        """Create the control segment + lock file and become the owner."""
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative (0 disables)")
        name = f"{cls._SEGMENT_PREFIX}_{os.getpid()}_{uuid.uuid4().hex[:8]}"
        control = _shm.SharedMemory(create=True, size=control_capacity, name=name)
        _untrack(control)
        with _attached_lock:
            _attached_segments[control.name] = control
        lock_path = os.path.join(
            tempfile.gettempdir(), f"{name}.lock"
        )
        open(lock_path, "a+b").close()
        store = cls(StoreToken(control=control.name, lock_path=lock_path), owner=True)
        index = {
            "max_bytes": int(max_bytes),
            "current_bytes": 0,
            "evictions": 0,
            "evicted_bytes": 0,
            "seq": 0,
            "entries": OrderedDict(),
        }
        with store._locked():
            store._write_index(index)
        store._max_bytes_cache = int(max_bytes)
        return store

    @classmethod
    def attach(cls, token: StoreToken) -> "SharedFrameStore":
        """Attach to an existing store as a non-owning reader/inserter."""
        store = cls(token, owner=False)
        with store._locked():
            store._max_bytes_cache = store._read_index()["max_bytes"]
        return store

    # -- observability -------------------------------------------------------

    def set_obs(self, obs=None) -> None:
        """Attach telemetry (mirrors :meth:`FrameStore.set_obs`)."""
        from repro.obs import NULL_TELEMETRY

        telemetry = obs if obs is not None else NULL_TELEMETRY
        self._obs_hit = telemetry.counter(f"{self._METRIC_PREFIX}.hit")
        self._obs_miss = telemetry.counter(f"{self._METRIC_PREFIX}.miss")
        self._obs_evicted = telemetry.counter(f"{self._METRIC_PREFIX}.evicted_bytes")
        self._obs_lease_wait = telemetry.counter(f"{self._METRIC_PREFIX}.lease_wait")

    # -- index plumbing (all under the cross-process lock) -------------------

    class _Locked:
        def __init__(self, store: "SharedFrameStore") -> None:
            self._store = store

        def __enter__(self) -> None:
            self._store._mutex.acquire()
            fcntl.flock(self._store._lock_file, fcntl.LOCK_EX)

        def __exit__(self, *exc: object) -> None:
            fcntl.flock(self._store._lock_file, fcntl.LOCK_UN)
            self._store._mutex.release()

    def _locked(self) -> "SharedFrameStore._Locked":
        return SharedFrameStore._Locked(self)

    def _read_index(self) -> dict:
        buf = self._control.buf
        (length,) = _INDEX_HEADER.unpack_from(buf, 0)
        index = pickle.loads(bytes(buf[_INDEX_HEADER.size : _INDEX_HEADER.size + length]))
        self._max_bytes_cache = index["max_bytes"]
        return index

    def _write_index(self, index: dict) -> None:
        payload = pickle.dumps(index, protocol=pickle.HIGHEST_PROTOCOL)
        if _INDEX_HEADER.size + len(payload) > self._control.size:
            raise RuntimeError(
                f"shared frame-store index overflow "
                f"({len(payload)} bytes > control segment {self._control.size})"
            )
        buf = self._control.buf
        _INDEX_HEADER.pack_into(buf, 0, len(payload))
        buf[_INDEX_HEADER.size : _INDEX_HEADER.size + len(payload)] = payload

    # -- core ----------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._max_bytes_cache > 0

    @property
    def max_bytes(self) -> int:
        return self._max_bytes_cache

    def __len__(self) -> int:
        with self._locked():
            index = self._read_index()
        return sum(
            1 for entry in index["entries"].values() if entry[0] == _ReadyEntry.READY
        )

    def _front_put(self, key: tuple[str, int], frame: np.ndarray) -> None:
        self._front[key] = frame
        self._front.move_to_end(key)
        while len(self._front) > _FRONT_CAPACITY:
            self._front.popitem(last=False)

    def _serve_ready(
        self, key: tuple[str, int], entry: tuple
    ) -> np.ndarray | None:
        """Map a ready entry into a read-only view (None if segment gone)."""
        _, segment, shape, dtype = entry
        try:
            shm = _attach_segment(segment)
        except FileNotFoundError:
            return None
        frame = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
        frame.setflags(write=False)
        self._front_put(key, frame)
        return frame

    def get(self, fingerprint: str, frame_index: int) -> np.ndarray | None:
        """The stored frame, or ``None`` after writing a render lease.

        A miss is a *claim*: the caller is now expected to render the
        frame and ``put`` it.  Concurrent readers of the same key wait
        for the fill (bounded by ``_LEASE_TIMEOUT_S``) instead of
        rendering duplicates, so fleet-wide misses stay at one per
        unique frame.
        """
        if self._max_bytes_cache <= 0 and not self._refresh_enabled():
            return None
        key = (fingerprint, frame_index)
        with self._mutex:
            cached = self._front.get(key)
            if cached is not None:
                self._front.move_to_end(key)
                self.hits += 1
                self._obs_hit.inc()
                return cached
        deadline = None
        waited = False
        while True:
            with self._locked():
                index = self._read_index()
                if index["max_bytes"] <= 0:
                    return None
                entry = index["entries"].get(key)
                if entry is None:
                    # Claim the render: later readers wait on this lease.
                    index["entries"][key] = (_ReadyEntry.LEASE, os.getpid(), time.time())
                    self._write_index(index)
                    self.misses += 1
                    self._obs_miss.inc()
                    return None
                if entry[0] == _ReadyEntry.READY:
                    frame = self._serve_ready(key, entry)
                    if frame is None:
                        # Stale entry (segment reclaimed underneath us):
                        # drop it and re-claim as a fresh lease.
                        del index["entries"][key]
                        index["entries"][key] = (
                            _ReadyEntry.LEASE,
                            os.getpid(),
                            time.time(),
                        )
                        self._write_index(index)
                        self.misses += 1
                        self._obs_miss.inc()
                        return None
                    index["entries"].move_to_end(key)
                    self._write_index(index)
                    self.hits += 1
                    self._obs_hit.inc()
                    return frame
                # Someone else holds the render lease.
                now = time.time()
                if deadline is None:
                    deadline = now + _LEASE_TIMEOUT_S
                    waited = True
                    self.lease_waits += 1
                    self._obs_lease_wait.inc()
                if now >= deadline or entry[2] + _LEASE_TIMEOUT_S < now:
                    # Lease expired (renderer died or is wedged): take it
                    # over and render ourselves.
                    index["entries"][key] = (_ReadyEntry.LEASE, os.getpid(), now)
                    self._write_index(index)
                    self.misses += 1
                    self._obs_miss.inc()
                    return None
            time.sleep(_LEASE_POLL_S)
        # ``waited`` is folded into lease_waits above; unreachable.

    def _refresh_enabled(self) -> bool:
        """Re-read ``max_bytes`` (the owner may have re-budgeted us)."""
        with self._locked():
            return self._read_index()["max_bytes"] > 0

    def put(self, fingerprint: str, frame_index: int, frame: np.ndarray) -> np.ndarray:
        """Publish a rendered frame; first insert wins fleet-wide.

        Returns the canonical (segment-backed, read-only) array on
        success or when an earlier racing insert won; returns the
        caller's array untouched — and still writable — when nothing was
        stored (store disabled, frame over budget).  Fills this
        process's outstanding render lease either way.
        """
        key = (fingerprint, frame_index)
        nbytes = int(frame.nbytes)
        with self._locked():
            index = self._read_index()
            if index["max_bytes"] <= 0:
                return frame
            entry = index["entries"].get(key)
            if entry is not None and entry[0] == _ReadyEntry.READY:
                served = self._serve_ready(key, entry)
                if served is not None:
                    return served
                del index["entries"][key]
                entry = None
            if nbytes > index["max_bytes"]:
                # Never storable: drop any lease so waiters stop polling.
                if entry is not None:
                    del index["entries"][key]
                    self._write_index(index)
                return frame
            segment_name = f"{self.token.control}_{index['seq']}"
            index["seq"] += 1
            try:
                shm = _shm.SharedMemory(create=True, size=nbytes, name=segment_name)
            except FileExistsError:  # pragma: no cover - seq is lock-serialised
                self._write_index(index)
                return frame
            _untrack(shm)
            with _attached_lock:
                _attached_segments[shm.name] = shm
            view = np.ndarray(frame.shape, dtype=frame.dtype, buffer=shm.buf)
            view[:] = frame
            view.setflags(write=False)
            index["entries"][key] = (
                _ReadyEntry.READY,
                segment_name,
                tuple(frame.shape),
                frame.dtype.str,
            )
            index["entries"].move_to_end(key)
            index["current_bytes"] += nbytes
            if self.owner:
                self._evict_over_budget(index)
            self._write_index(index)
            self._front_put(key, view)
        return view

    # -- owner-side reclamation ----------------------------------------------

    def _evict_over_budget(self, index: dict) -> None:
        """Unlink LRU segments until within budget (lock held, owner only)."""
        entries = index["entries"]
        while index["current_bytes"] > index["max_bytes"]:
            victim_key = next(
                (k for k, e in entries.items() if e[0] == _ReadyEntry.READY), None
            )
            if victim_key is None:
                break
            _, segment, shape, dtype = entries.pop(victim_key)
            nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
            index["current_bytes"] -= nbytes
            index["evictions"] += 1
            index["evicted_bytes"] += nbytes
            self._obs_evicted.inc(nbytes)
            self._unlink_segment(segment)

    @staticmethod
    def _unlink_segment(name: str) -> None:
        """Remove a segment's name; live mappings elsewhere stay valid."""
        try:
            with _attached_lock:
                shm = _attached_segments.get(name)
            if shm is None:
                shm = _shm.SharedMemory(name=name)
                _untrack(shm)
                with _attached_lock:
                    _attached_segments[name] = shm
            _retrack(name)
            shm.unlink()
        except FileNotFoundError:
            pass

    def reclaim(self) -> int:
        """Evict over-budget LRU segments (owner only); returns bytes freed.

        The parent calls this between shard completions so workers never
        have to unlink — a worker can therefore never pull a segment out
        from under a process that just read the index.
        """
        if not self.owner:
            return 0
        with self._locked():
            index = self._read_index()
            before = index["evicted_bytes"]
            self._evict_over_budget(index)
            freed = index["evicted_bytes"] - before
            if freed:
                self._write_index(index)
        return freed

    # -- management ----------------------------------------------------------

    def set_budget(self, max_bytes: int) -> None:
        """Change the fleet-wide byte budget; shrinking reclaims (owner)."""
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative (0 disables)")
        with self._locked():
            index = self._read_index()
            index["max_bytes"] = int(max_bytes)
            self._max_bytes_cache = int(max_bytes)
            if self.owner:
                if max_bytes == 0:
                    self._drop_all(index)
                else:
                    self._evict_over_budget(index)
            self._write_index(index)
        if max_bytes == 0:
            with self._mutex:
                self._front.clear()

    def _drop_all(self, index: dict) -> None:
        for key, entry in list(index["entries"].items()):
            if entry[0] == _ReadyEntry.READY:
                self._unlink_segment(entry[1])
        index["entries"].clear()
        index["current_bytes"] = 0

    def clear(self) -> None:
        """Drop every entry fleet-wide (owner) or just the local front."""
        with self._locked():
            if self.owner:
                index = self._read_index()
                self._drop_all(index)
                self._write_index(index)
        with self._mutex:
            self._front.clear()

    def stats(self) -> dict:
        """Snapshot: local hit/miss/lease counters + fleet-wide map state."""
        with self._locked():
            index = self._read_index()
        entries = sum(
            1 for entry in index["entries"].values() if entry[0] == _ReadyEntry.READY
        )
        return {
            "max_bytes": index["max_bytes"],
            "current_bytes": index["current_bytes"],
            "entries": entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": index["evictions"],
            "evicted_bytes": index["evicted_bytes"],
            "lease_waits": self.lease_waits,
        }

    # -- teardown ------------------------------------------------------------

    def close(self) -> None:
        """Owner: unlink every segment + the control block and lock file.

        Live mappings in other processes survive the unlink (POSIX keeps
        the memory until the last map goes away); only the *names* are
        removed, so no new attach can land on a dead store.  Non-owners
        just close their lock-file handle.
        """
        if self._closed:
            return
        self._closed = True
        if self.owner:
            try:
                with self._locked():
                    index = self._read_index()
                    for entry in index["entries"].values():
                        if entry[0] == _ReadyEntry.READY:
                            self._unlink_segment(entry[1])
            except Exception:  # pragma: no cover - teardown best-effort
                pass
            try:
                _retrack(self._control.name)
                self._control.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            try:
                os.unlink(self.token.lock_path)
            except OSError:  # pragma: no cover
                pass
        try:
            self._lock_file.close()
        except OSError:  # pragma: no cover
            pass

    def _atexit_cleanup(self) -> None:  # pragma: no cover - exercised at exit
        """Crash/exit fallback so an aborted sweep does not leak /dev/shm."""
        try:
            self.close()
        except Exception:
            pass
