"""Process-wide shared frame cache: render every frame once per process.

A sweep runs many methods over the same clips — fig6 alone runs 13
methods over 3 clips — and every method walks its clip from frame 0.
The per-renderer cache cannot help across methods (it is cold again by
the time the next method starts), so without sharing, each synthetic
frame is rasterised once *per method* in every worker.  Frame synthesis
stands in for the camera in this reproduction; the paper's pipeline is
supposed to be the bottleneck, not the frame source.

:class:`FrameStore` is a byte-budgeted LRU shared by every
:class:`~repro.video.render.FrameRenderer` in the process.  Keys are
``(scene fingerprint, frame_index)``: the fingerprint digests everything
that determines a scene's pixel stream (scenario config + seed), so two
renderers built from the same spec — e.g. the worker clip LRU rebuilding
a clip, or two methods sharing a suite clip — read and write the same
entries.  Rendering is deterministic, so a stored frame is bit-identical
to a fresh render; the store can only change *when* pixels are computed,
never *what* they are.

The store is disabled until given a budget (``max_bytes == 0`` makes
``get``/``put`` no-ops), so existing single-run paths pay nothing unless
an experiment opts in via ``PipelineConfig.frame_store_mb`` or the
``--frame-store-mb`` CLI flag.  See DESIGN.md §9.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (render imports us)
    from repro.video.scene import Scene

BYTES_PER_MB = 1 << 20


def scene_fingerprint(scene: "Scene") -> str:
    """Stable digest of everything that determines a scene's pixels.

    Frames are a pure function of ``(scenario config, scene seed,
    frame_index)``; the config's dataclass ``repr`` covers every field,
    including nested spawn specs and phases, so two scenes with equal
    fingerprints render bit-identical frame streams.  The digest is
    content-based (not ``id``-based) on purpose: worker processes rebuild
    clips from specs and must land on the same keys as the parent.
    """
    payload = repr((scene.config, scene.seed))
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()


class FrameStore:
    """Byte-budgeted LRU of rendered frames, shared across renderers.

    Thread-safe: the live executor renders from multiple threads through
    one process-wide instance.  Accounting is by ``frame.nbytes`` — the
    budget bounds pixel payload, not Python object overhead, which for
    float32 frames is negligible in comparison.

    Stored frames are marked read-only: every renderer (and every method
    sharing the store) hands out the *same* array object, so an in-place
    mutation would silently corrupt other methods' inputs.
    """

    def __init__(self, max_bytes: int = 0) -> None:
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative (0 disables)")
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple[str, int], np.ndarray] = OrderedDict()
        self.max_bytes = int(max_bytes)
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.evicted_bytes = 0
        self.set_obs(None)

    # -- observability -------------------------------------------------------

    def set_obs(self, obs=None) -> None:
        """Attach telemetry for the hit/miss/eviction counters (None detaches).

        Mirrors ``FrameRenderer.set_obs``: instruments are resolved once,
        so the hot path pays one no-op method call when observability is
        off.  The sweep engine additionally funnels per-shard deltas to
        the parent sink (workers cannot share it) — see
        ``repro.parallel.engine``.
        """
        from repro.obs import NULL_TELEMETRY

        telemetry = obs if obs is not None else NULL_TELEMETRY
        self._obs_hit = telemetry.counter("framestore.hit")
        self._obs_miss = telemetry.counter("framestore.miss")
        self._obs_evicted = telemetry.counter("framestore.evicted_bytes")

    # -- core ----------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self.max_bytes > 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, fingerprint: str, frame_index: int) -> np.ndarray | None:
        """The stored frame, or ``None``.  Disabled stores never count."""
        if self.max_bytes <= 0:
            return None
        key = (fingerprint, frame_index)
        with self._lock:
            frame = self._entries.get(key)
            if frame is None:
                self.misses += 1
                self._obs_miss.inc()
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            self._obs_hit.inc()
            return frame

    def put(self, fingerprint: str, frame_index: int, frame: np.ndarray) -> None:
        """Insert a freshly rendered frame, evicting LRU entries over budget.

        A frame larger than the whole budget is not stored (it would evict
        everything and then be evicted itself by the next insert).  On a
        racing double-insert the first entry wins — both arrays hold
        identical bytes, so the choice is invisible to callers.
        """
        if self.max_bytes <= 0:
            return
        nbytes = int(frame.nbytes)
        if nbytes > self.max_bytes:
            return
        frame.setflags(write=False)
        key = (fingerprint, frame_index)
        with self._lock:
            if key in self._entries:
                return
            self._entries[key] = frame
            self.current_bytes += nbytes
            self._evict_over_budget()

    def _evict_over_budget(self) -> None:
        """Evict least-recently-used entries until within budget (lock held)."""
        while self.current_bytes > self.max_bytes and self._entries:
            _, evicted = self._entries.popitem(last=False)
            nbytes = int(evicted.nbytes)
            self.current_bytes -= nbytes
            self.evictions += 1
            self.evicted_bytes += nbytes
            self._obs_evicted.inc(nbytes)

    # -- management ----------------------------------------------------------

    def set_budget(self, max_bytes: int) -> None:
        """Change the byte budget; shrinking evicts LRU entries immediately."""
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative (0 disables)")
        with self._lock:
            self.max_bytes = int(max_bytes)
            if self.max_bytes == 0:
                # Disabling drops the payload: a disabled store should not
                # pin tens of megabytes of frames nobody can reach.
                self._entries.clear()
                self.current_bytes = 0
            else:
                self._evict_over_budget()

    def clear(self) -> None:
        """Drop every entry (budget and counters are kept)."""
        with self._lock:
            self._entries.clear()
            self.current_bytes = 0

    def stats(self) -> dict:
        """Counter snapshot, e.g. for bench documents and summaries."""
        with self._lock:
            return {
                "max_bytes": self.max_bytes,
                "current_bytes": self.current_bytes,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "evicted_bytes": self.evicted_bytes,
            }


# The process-wide default instance.  Renderers constructed without an
# explicit store resolve this at render time, so configuring it *after*
# clips were built still takes effect — the sweep engine relies on that
# for its inline (jobs=1) path, where the caller owns the clips.
_default_store = FrameStore(0)
_default_lock = threading.Lock()


def default_store() -> FrameStore:
    """The process-wide store (disabled until configured)."""
    return _default_store


def configure_default(max_bytes: int) -> FrameStore:
    """Set the process-wide store's budget and return it.

    Called from ``ClipSpec.build()`` in workers and from the sweep engine
    in the parent, so one ``--frame-store-mb`` knob reaches every process
    of a sweep.  Last caller wins; with one config per sweep that is the
    only caller.
    """
    with _default_lock:
        _default_store.set_budget(max_bytes)
    return _default_store
