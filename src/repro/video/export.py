"""Export/import clips: rendered frames + ground truth as ``.npz``.

Lets a downstream user inspect the synthetic videos with external tools,
pin an exact workload for regression comparisons across library versions,
or feed recorded ground truth into another system.  The archive holds the
rendered frames, per-frame box arrays, labels, object ids, and the
difficulty series.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.geometry import Box
from repro.video.dataset import VideoClip
from repro.video.scene import FrameAnnotation, GroundTruthObject

_FORMAT_VERSION = 1


def export_clip(clip: VideoClip, path: str | Path) -> Path:
    """Write a clip's frames and ground truth to ``path`` (``.npz``)."""
    path = Path(path)
    frames = np.stack([clip.frame(i) for i in range(clip.num_frames)])
    boxes, labels, object_ids, frame_index = [], [], [], []
    for i in range(clip.num_frames):
        for obj in clip.annotation(i).objects:
            frame_index.append(i)
            object_ids.append(obj.object_id)
            labels.append(obj.label)
            boxes.append(obj.box.as_tuple())
    metadata = {
        "format_version": _FORMAT_VERSION,
        "name": clip.name,
        "fps": clip.fps,
        "num_frames": clip.num_frames,
        "frame_width": clip.config.frame_width,
        "frame_height": clip.config.frame_height,
    }
    np.savez_compressed(
        path,
        frames=frames.astype(np.float32),
        boxes=np.asarray(boxes, dtype=np.float64).reshape(-1, 4),
        labels=np.asarray(labels, dtype=object),
        object_ids=np.asarray(object_ids, dtype=np.int64),
        frame_index=np.asarray(frame_index, dtype=np.int64),
        difficulty=np.asarray(
            [clip.scene.difficulty(i) for i in range(clip.num_frames)]
        ),
        metadata=json.dumps(metadata),
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


class ExportedClip:
    """Read-only view over an exported clip archive.

    Provides the same ``frame``/``annotation``/``num_frames`` surface the
    pipelines consume, so an exported workload can be re-run without the
    generator (``MPDTPipeline(...).run(exported)`` works via duck typing —
    except that ``scene`` is a lightweight shim exposing ``annotations()``
    and ``difficulty()`` only).
    """

    class _SceneShim:
        def __init__(self, owner: "ExportedClip") -> None:
            self._owner = owner

        def annotations(self) -> list[FrameAnnotation]:
            return [self._owner.annotation(i) for i in range(self._owner.num_frames)]

        def difficulty(self, frame_index: int) -> float:
            return float(self._owner._difficulty[frame_index])

    def __init__(self, path: str | Path) -> None:
        archive = np.load(Path(path), allow_pickle=True)
        metadata = json.loads(str(archive["metadata"]))
        if metadata.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported clip archive version {metadata.get('format_version')}"
            )
        self.name: str = metadata["name"]
        self.fps: float = metadata["fps"]
        self.num_frames: int = metadata["num_frames"]
        self.frame_width: int = metadata["frame_width"]
        self.frame_height: int = metadata["frame_height"]
        self._frames = archive["frames"]
        self._difficulty = archive["difficulty"]
        self._annotations: list[FrameAnnotation] = self._build_annotations(archive)
        self.scene = ExportedClip._SceneShim(self)
        # Namespace matching VideoClip.config for the fields pipelines read.
        from types import SimpleNamespace

        self.config = SimpleNamespace(
            frame_width=self.frame_width,
            frame_height=self.frame_height,
            fps=self.fps,
            num_frames=self.num_frames,
            frame_interval=1.0 / self.fps,
        )

    def _build_annotations(self, archive) -> list[FrameAnnotation]:
        per_frame: list[list[GroundTruthObject]] = [
            [] for _ in range(self.num_frames)
        ]
        boxes = archive["boxes"]
        labels = archive["labels"]
        object_ids = archive["object_ids"]
        frame_index = archive["frame_index"]
        for i in range(len(frame_index)):
            per_frame[int(frame_index[i])].append(
                GroundTruthObject(
                    object_id=int(object_ids[i]),
                    label=str(labels[i]),
                    box=Box(*(float(v) for v in boxes[i])),
                )
            )
        return [
            FrameAnnotation(
                frame_index=i,
                objects=tuple(objs),
                difficulty=float(self._difficulty[i]),
            )
            for i, objs in enumerate(per_frame)
        ]

    def frame(self, index: int) -> np.ndarray:
        return self._frames[index]

    def annotation(self, index: int) -> FrameAnnotation:
        return self._annotations[index]
