"""Video clips and suites: the unit of work every experiment consumes.

A :class:`VideoClip` bundles a scene (ground truth) with a renderer
(pixels) under a human-readable name.  A :class:`VideoSuite` is an ordered
collection of clips — the reproduction's stand-in for the paper's training
corpus (105 205 frames) and evaluation corpus (141 213 frames), scaled to
what a CPU-only environment can process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.video.framestore import FrameStore
from repro.video.library import make_scenario
from repro.video.render import FrameRenderer
from repro.video.scenario import ScenarioConfig
from repro.video.scene import FrameAnnotation, Scene


@dataclass
class VideoClip:
    """One synthetic video: ground truth plus lazily rendered frames."""

    name: str
    scene: Scene
    renderer: FrameRenderer = field(repr=False)

    @property
    def config(self) -> ScenarioConfig:
        return self.scene.config

    @property
    def num_frames(self) -> int:
        return self.scene.config.num_frames

    @property
    def fps(self) -> float:
        return self.scene.config.fps

    def frame(self, index: int) -> np.ndarray:
        """Rendered grayscale frame at ``index``."""
        return self.renderer.render(index)

    def annotation(self, index: int) -> FrameAnnotation:
        """Ground truth at ``index``."""
        return self.scene.annotation(index)

    def chunk_bounds(self, chunk_seconds: float = 1.0) -> list[tuple[int, int]]:
        """Half-open ``(start, stop)`` frame ranges of fixed-duration chunks.

        The adaptation trainer works on 1-second chunks (paper §IV-D3).
        The final partial chunk is included if it has at least one frame.
        """
        if chunk_seconds <= 0:
            raise ValueError("chunk_seconds must be positive")
        chunk_frames = max(1, int(round(chunk_seconds * self.fps)))
        bounds = []
        for start in range(0, self.num_frames, chunk_frames):
            bounds.append((start, min(start + chunk_frames, self.num_frames)))
        return bounds


def make_clip(
    scenario: str | ScenarioConfig,
    seed: int,
    num_frames: int | None = None,
    name: str | None = None,
    render_cache: int = 64,
    frame_store: FrameStore | None = None,
    **overrides,
) -> VideoClip:
    """Build a clip from a preset name or an explicit scenario config.

    ``frame_store`` pins the renderer to a specific shared
    :class:`~repro.video.framestore.FrameStore`; the default (``None``)
    resolves the process-wide store at render time, which is inert until
    someone gives it a byte budget.
    """
    if isinstance(scenario, str):
        config = make_scenario(scenario, num_frames=num_frames, **overrides)
    else:
        config = scenario
        if num_frames is not None:
            config = config.with_frames(num_frames)
    scene = Scene(config, seed=seed)
    renderer = FrameRenderer(scene, cache_size=render_cache, frame_store=frame_store)
    clip_name = name or f"{config.name}-{seed}"
    return VideoClip(name=clip_name, scene=scene, renderer=renderer)


@dataclass
class VideoSuite:
    """An ordered, named collection of clips."""

    name: str
    clips: list[VideoClip]

    def __iter__(self) -> Iterator[VideoClip]:
        return iter(self.clips)

    def __len__(self) -> int:
        return len(self.clips)

    @property
    def total_frames(self) -> int:
        return sum(clip.num_frames for clip in self.clips)

    def describe(self) -> str:
        lines = [f"suite {self.name}: {len(self.clips)} clips, {self.total_frames} frames"]
        for clip in self.clips:
            lines.append(
                f"  {clip.name}: {clip.num_frames} frames @ {clip.fps:g} fps "
                f"(~{clip.config.content_speed_hint():.2f} px/frame)"
            )
        return "\n".join(lines)
