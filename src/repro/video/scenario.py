"""Scenario configuration: the knobs that define a synthetic video.

A scenario captures what the paper calls the "type" of a video — how fast
its content changes.  The three levers are object speed, camera pan speed,
and object arrival rate; all other knobs shape appearance (object classes,
sizes, texture contrast) and matter mostly to the renderer and detector
noise model.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class SpawnSpec:
    """How one class of objects enters the scene.

    ``arrival_rate`` is the expected number of new objects per frame
    (Poisson).  Speeds are in world pixels per frame.  ``direction`` selects
    the entry pattern: lateral traffic crosses the frame horizontally,
    vertical traffic crosses it vertically, ``any`` enters from a random
    edge heading inward, and ``ambient`` objects start inside the frame and
    wander slowly (e.g., people in a meeting room).
    """

    label: str
    arrival_rate: float
    speed_min: float
    speed_max: float
    width_range: tuple[float, float]
    height_range: tuple[float, float]
    direction: str = "lateral"
    scale_rate_range: tuple[float, float] = (1.0, 1.0)
    weight: float = 1.0
    # How non-rigid this class looks on video: articulated classes (person,
    # dog, horse) deform a lot, vehicles a little.  The rendered deformation
    # amplitude also grows with the object's speed, modelling motion blur
    # and out-of-plane rotation — the reason real optical-flow tracking
    # degrades sharply on fast content (paper Observation 3).
    deformability: float = 0.5

    VALID_DIRECTIONS = ("lateral", "vertical", "any", "ambient")

    def __post_init__(self) -> None:
        if self.direction not in self.VALID_DIRECTIONS:
            raise ValueError(f"unknown direction {self.direction!r}")
        if self.arrival_rate < 0:
            raise ValueError("arrival_rate must be non-negative")
        if not 0 <= self.speed_min <= self.speed_max:
            raise ValueError("need 0 <= speed_min <= speed_max")
        if self.width_range[0] <= 0 or self.height_range[0] <= 0:
            raise ValueError("object sizes must be positive")
        if self.deformability < 0:
            raise ValueError("deformability must be non-negative")


@dataclass(frozen=True, slots=True)
class ScenarioPhase:
    """A change in scene dynamics starting at ``start_frame``.

    ``speed_scale`` multiplies the speed of objects spawned during the
    phase; ``rate_scale`` multiplies arrival rates.  Phases let one clip
    move between calm and busy periods — the situation in which runtime
    model adaptation beats every fixed setting (paper Fig. 9).
    """

    start_frame: int
    speed_scale: float = 1.0
    rate_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.start_frame < 0:
            raise ValueError("start_frame must be non-negative")
        if self.speed_scale <= 0 or self.rate_scale < 0:
            raise ValueError("phase scales must be positive (rate may be zero)")


@dataclass(frozen=True, slots=True)
class ScenarioConfig:
    """Full description of a synthetic video.

    ``frame_width``/``frame_height`` are the rendered frame size (the paper
    uses 1280x720 sources; we render at a quarter scale by default, which
    keeps Lucas-Kanade tracking behaviour intact while staying fast).
    ``camera_pan`` is the camera velocity in world pixels per frame; panning
    makes *all* content move, which is the dominant change-rate driver for
    car-mounted and handheld videos.
    """

    name: str
    frame_width: int = 320
    frame_height: int = 180
    fps: float = 30.0
    num_frames: int = 600
    spawns: tuple[SpawnSpec, ...] = field(default_factory=tuple)
    initial_objects: int = 4
    camera_pan: tuple[float, float] = (0.0, 0.0)
    camera_jitter: float = 0.0
    background_contrast: float = 0.25
    object_contrast: float = 0.8
    sensor_noise: float = 0.01
    min_visible_fraction: float = 0.25
    phases: tuple[ScenarioPhase, ...] = field(default_factory=tuple)
    # Amplitude of the slowly varying per-frame "difficulty" process in
    # [0, 1].  Real detector errors are strongly correlated within a frame
    # and across nearby frames (lighting, clutter, blur make a whole scene
    # easy or hard); the simulated detector scales its error rates by this
    # process, which makes the per-frame F1 distribution bimodal like real
    # YOLO output instead of binomially concentrated.
    difficulty_amp: float = 0.45

    def __post_init__(self) -> None:
        if self.frame_width < 32 or self.frame_height < 32:
            raise ValueError("frame must be at least 32x32")
        if self.fps <= 0:
            raise ValueError("fps must be positive")
        if self.num_frames <= 0:
            raise ValueError("num_frames must be positive")
        if not 0 < self.min_visible_fraction <= 1:
            raise ValueError("min_visible_fraction must be in (0, 1]")
        if self.sensor_noise < 0:
            raise ValueError("sensor_noise must be non-negative")
        if not 0.0 <= self.difficulty_amp <= 0.5:
            raise ValueError("difficulty_amp must be in [0, 0.5]")
        starts = [p.start_frame for p in self.phases]
        if starts != sorted(starts):
            raise ValueError("phases must be sorted by start_frame")

    def phase_at(self, frame_index: int) -> ScenarioPhase:
        """The phase in effect at ``frame_index`` (identity if none declared)."""
        current = ScenarioPhase(start_frame=0)
        for phase in self.phases:
            if phase.start_frame <= frame_index:
                current = phase
            else:
                break
        return current

    @property
    def frame_interval(self) -> float:
        """Seconds between consecutive camera frames."""
        return 1.0 / self.fps

    @property
    def duration(self) -> float:
        """Video length in seconds."""
        return self.num_frames / self.fps

    def with_frames(self, num_frames: int) -> "ScenarioConfig":
        """A copy of this scenario with a different length."""
        from dataclasses import replace

        return replace(self, num_frames=num_frames)

    def content_speed_hint(self) -> float:
        """A rough a-priori content change rate in pixels/frame.

        Combines camera pan with the spawn-weighted mean object speed.  Used
        only for sanity checks and workload descriptions — the system itself
        measures change rate online from tracker output (Eq. 3).
        """
        pan = (self.camera_pan[0] ** 2 + self.camera_pan[1] ** 2) ** 0.5
        total_rate = sum(s.arrival_rate for s in self.spawns)
        if total_rate <= 0:
            return pan
        mean_obj = sum(
            s.arrival_rate * (s.speed_min + s.speed_max) / 2.0 for s in self.spawns
        ) / total_rate
        return pan + mean_obj
