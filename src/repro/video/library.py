"""Named scenario presets.

The paper's training corpus spans 14 scenario families (highway,
intersection, city street, train station, bus station, residential area,
car-mounted highway and downtown, airplanes, boats, wildlife, racetrack,
meeting room, skating rink).  Each preset here reproduces the family's
characteristic *content change rate* — the property AdaVP adapts to — via
object speeds (apparent, i.e. frame-space), arrival rates, and camera pan.

Speeds are in pixels/frame at the default 320x180 render size.  As rough
regimes: < 1 px/frame is "slow" (meeting room, boats), 1–2.5 is "medium"
(city streets), > 2.5 is "fast" (highway surveillance, racetrack,
car-mounted highway).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.video.scenario import ScenarioConfig, SpawnSpec

# Object footprint presets at 320x180 (roughly quarter-scale 720p).
_SIZES: dict[str, tuple[tuple[float, float], tuple[float, float]]] = {
    "person": ((9.0, 13.0), (20.0, 30.0)),
    "car": ((30.0, 42.0), (15.0, 21.0)),
    "truck": ((42.0, 56.0), (20.0, 28.0)),
    "bus": ((46.0, 60.0), (22.0, 30.0)),
    "bicycle": ((11.0, 15.0), (17.0, 23.0)),
    "motorbike": ((12.0, 17.0), (16.0, 22.0)),
    "dog": ((13.0, 18.0), (9.0, 13.0)),
    "horse": ((20.0, 28.0), (16.0, 22.0)),
    "airplane": ((50.0, 70.0), (16.0, 24.0)),
    "boat": ((40.0, 60.0), (18.0, 26.0)),
    "train": ((90.0, 130.0), (26.0, 34.0)),
}


# Per-class non-rigidity: articulated classes deform strongly on video,
# vehicles weakly (see SpawnSpec.deformability).
_DEFORMABILITY: dict[str, float] = {
    "person": 1.3,
    "car": 0.45,
    "truck": 0.5,
    "bus": 0.5,
    "bicycle": 1.0,
    "motorbike": 0.8,
    "dog": 1.2,
    "horse": 1.2,
    "airplane": 0.3,
    "boat": 0.6,
    "train": 0.4,
}


def _spawn(
    label: str,
    rate: float,
    speed: tuple[float, float],
    direction: str = "lateral",
    scale_rate: tuple[float, float] = (1.0, 1.0),
    weight: float = 1.0,
    deformability: float | None = None,
) -> SpawnSpec:
    width_range, height_range = _SIZES[label]
    return SpawnSpec(
        label=label,
        arrival_rate=rate,
        speed_min=speed[0],
        speed_max=speed[1],
        width_range=width_range,
        height_range=height_range,
        direction=direction,
        scale_rate_range=scale_rate,
        weight=weight,
        deformability=(
            _DEFORMABILITY[label] if deformability is None else deformability
        ),
    )


def _highway_surveillance() -> ScenarioConfig:
    return ScenarioConfig(
        name="highway_surveillance",
        spawns=(
            _spawn("car", 0.038, (2.6, 4.2), weight=3.0),
            _spawn("truck", 0.008, (2.2, 3.4)),
            _spawn("bus", 0.005, (2.0, 3.0)),
        ),
        initial_objects=5,
    )


def _intersection() -> ScenarioConfig:
    return ScenarioConfig(
        name="intersection",
        spawns=(
            _spawn("car", 0.022, (1.2, 2.6), direction="any", weight=3.0),
            _spawn("truck", 0.005, (1.0, 2.0), direction="any"),
            _spawn("person", 0.010, (0.5, 1.2), direction="any", weight=2.0),
            _spawn("bicycle", 0.005, (0.8, 1.8), direction="any"),
        ),
        initial_objects=5,
    )


def _city_street() -> ScenarioConfig:
    return ScenarioConfig(
        name="city_street",
        spawns=(
            _spawn("car", 0.014, (1.0, 2.2), weight=2.0),
            _spawn("person", 0.005, (0.5, 1.1), weight=2.0),
            _spawn("motorbike", 0.004, (1.4, 2.6)),
        ),
        initial_objects=5,
    )


def _train_station() -> ScenarioConfig:
    return ScenarioConfig(
        name="train_station",
        spawns=(
            _spawn("train", 0.004, (1.2, 2.4)),
            _spawn("person", 0.012, (0.3, 0.9), direction="any", weight=3.0),
        ),
        initial_objects=5,
    )


def _bus_station() -> ScenarioConfig:
    return ScenarioConfig(
        name="bus_station",
        spawns=(
            _spawn("bus", 0.01, (0.8, 1.6)),
            _spawn("person", 0.012, (0.3, 0.9), direction="any", weight=3.0),
        ),
        initial_objects=5,
    )


def _residential() -> ScenarioConfig:
    return ScenarioConfig(
        name="residential",
        spawns=(
            _spawn("car", 0.012, (0.6, 1.4)),
            _spawn("person", 0.008, (0.3, 0.7), direction="any", weight=2.0),
            _spawn("dog", 0.008, (0.4, 1.0), direction="any"),
        ),
        initial_objects=4,
    )


def _car_highway() -> ScenarioConfig:
    # Car-mounted camera: everything sweeps through the frame quickly and the
    # background flows fast.
    return ScenarioConfig(
        name="car_highway",
        spawns=(
            _spawn("car", 0.035, (2.8, 4.5), weight=3.0, scale_rate=(1.0, 1.008)),
            _spawn("truck", 0.012, (2.4, 3.8), scale_rate=(1.0, 1.006)),
        ),
        initial_objects=4,
        camera_pan=(2.5, 0.0),
        camera_jitter=0.4,
    )


def _car_downtown() -> ScenarioConfig:
    return ScenarioConfig(
        name="car_downtown",
        spawns=(
            _spawn("car", 0.030, (1.6, 3.2), weight=3.0, scale_rate=(1.0, 1.006)),
            _spawn("person", 0.010, (1.0, 2.2), direction="any"),
            _spawn("bicycle", 0.005, (1.2, 2.4), direction="any"),
        ),
        initial_objects=5,
        camera_pan=(1.5, 0.0),
        camera_jitter=0.5,
    )


def _airplanes() -> ScenarioConfig:
    return ScenarioConfig(
        name="airplanes",
        spawns=(_spawn("airplane", 0.006, (0.5, 1.4), scale_rate=(0.999, 1.003)),),
        initial_objects=2,
        background_contrast=0.12,
    )


def _boat() -> ScenarioConfig:
    return ScenarioConfig(
        name="boat",
        spawns=(_spawn("boat", 0.008, (0.3, 0.9)),),
        initial_objects=2,
        background_contrast=0.15,
        camera_jitter=0.3,
    )


def _wildlife() -> ScenarioConfig:
    # Handheld panning shots of animals: medium speeds, shaky background.
    return ScenarioConfig(
        name="wildlife",
        spawns=(
            _spawn("horse", 0.015, (1.2, 2.6), direction="any", weight=2.0),
            _spawn("dog", 0.012, (1.0, 2.4), direction="any"),
        ),
        initial_objects=3,
        camera_pan=(1.0, 0.2),
        camera_jitter=0.8,
    )


def _racetrack() -> ScenarioConfig:
    return ScenarioConfig(
        name="racetrack",
        spawns=(
            _spawn("car", 0.040, (3.2, 5.0), weight=3.0),
            _spawn("motorbike", 0.018, (3.4, 5.2)),
        ),
        initial_objects=4,
        camera_jitter=0.5,
    )


def _meeting_room() -> ScenarioConfig:
    return ScenarioConfig(
        name="meeting_room",
        spawns=(_spawn("person", 0.006, (0.1, 0.45), direction="ambient", weight=1.0),),
        initial_objects=5,
        background_contrast=0.18,
    )


def _skating_rink() -> ScenarioConfig:
    return ScenarioConfig(
        name="skating_rink",
        spawns=(_spawn("person", 0.03, (1.2, 2.6), direction="any"),),
        initial_objects=6,
        background_contrast=0.14,
    )


SCENARIO_PRESETS: dict[str, Callable[[], ScenarioConfig]] = {
    "highway_surveillance": _highway_surveillance,
    "intersection": _intersection,
    "city_street": _city_street,
    "train_station": _train_station,
    "bus_station": _bus_station,
    "residential": _residential,
    "car_highway": _car_highway,
    "car_downtown": _car_downtown,
    "airplanes": _airplanes,
    "boat": _boat,
    "wildlife": _wildlife,
    "racetrack": _racetrack,
    "meeting_room": _meeting_room,
    "skating_rink": _skating_rink,
}


def list_scenarios() -> list[str]:
    """Names of all scenario presets, in a stable order."""
    return sorted(SCENARIO_PRESETS)


def make_scenario(name: str, num_frames: int | None = None, **overrides) -> ScenarioConfig:
    """Instantiate a preset, optionally overriding any config field."""
    try:
        factory = SCENARIO_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(list_scenarios())}"
        ) from None
    config = factory()
    if num_frames is not None:
        overrides["num_frames"] = num_frames
    if overrides:
        config = replace(config, **overrides)
    return config
