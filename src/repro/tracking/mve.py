"""Motion-vector-extrapolation tracker: the fast tier below pyramidal LK.

Follows True & Khan's MVE idea (PAPERS.md): instead of extracting good
features per box and iterating Lucas-Kanade windows, propagate each box by
the aggregate of cheap block-motion vectors under it.  Per frame the work
is one coarse-to-fine integer block match per ~``block_size``-pixel cell
of box area — O(boxes), with no feature extraction, no gradients, and no
Gauss-Newton iterations.

Boxes whose blocks all fail the match-cost ceiling (occlusion, heavy
deformation) coast on their last measured per-frame velocity —
constant-velocity extrapolation across skipped or unmatchable frames —
rather than going stale in place, which is what keeps boxes moving through
short occlusions at this tier.  The price of the tier is accuracy on
deforming content: integer block vectors cannot express sub-pixel or
non-rigid motion, so boxes drift faster than under LK (DESIGN.md §12
quantifies the decay).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.detection.detector import Detection
from repro.tracking.base import BoxTrackerBase, FrameProvider
from repro.tracking.motion import motion_velocity
from repro.tracking.tracker import TrackStep
from repro.vision.block_motion import (
    BlockMotionParams,
    block_motion_field,
    box_block_centers,
)
from repro.vision.optical_flow import FramePyramid
from repro.vision.pyramid_cache import PyramidCache


@dataclass(frozen=True, slots=True)
class MVETrackerConfig:
    """Knobs of the block-motion tracker.

    ``extrapolate`` enables constant-velocity coasting for boxes with no
    valid block match this step (disable for the measure-only ablation).
    """

    block: BlockMotionParams = field(default_factory=BlockMotionParams)
    min_box_dim: float = 3.0
    extrapolate: bool = True


class MVETracker(BoxTrackerBase):
    """Propagates one detection cycle's boxes from block-motion vectors.

    Same lifecycle as :class:`~repro.tracking.tracker.ObjectTracker` —
    ``initialize`` with detector output, ``track_to`` each selected frame
    forwards — and the same :class:`TrackStep` result type, so the MPDT
    pipeline swaps tiers without touching its cycle loop.
    """

    def __init__(
        self,
        frame_provider: FrameProvider,
        frame_width: int,
        frame_height: int,
        config: MVETrackerConfig | None = None,
        pyramid_cache: PyramidCache | None = None,
    ) -> None:
        super().__init__(frame_provider, frame_width, frame_height)
        self.config = config or MVETrackerConfig()
        self._pyramid_cache = pyramid_cache
        self._pyramid: FramePyramid | None = None
        # Per-object last measured velocity in pixels/frame, index-aligned
        # with ``self._objects``; zero until the first successful match.
        self._velocities: list[tuple[float, float]] = []
        self._last_valid_blocks = 0

    def _build_pyramid(self, frame_index: int) -> FramePyramid:
        levels = self.config.block.pyramid_levels
        if self._pyramid_cache is None:
            return FramePyramid(self._frames(frame_index), levels)
        return self._pyramid_cache.get(frame_index, levels, self._frames)

    @property
    def num_features(self) -> int:
        """Valid block vectors in the latest step (the LK-features analogue)."""
        return self._last_valid_blocks

    def planned_blocks(self) -> int:
        """Block count the next ``track_to`` will match, for cost charging.

        This is a pure function of the current live boxes — exactly the
        grid :func:`box_block_centers` lays out — so the simulator can
        charge the step's latency before running it.
        """
        boxes = [obj.box for obj in self._objects if obj.alive]
        if not boxes:
            return 0
        points, _ = box_block_centers(
            boxes, self.frame_width, self.frame_height, self.config.block.block_size
        )
        return int(points.shape[0])

    def initialize(self, frame_index: int, detections: Sequence[Detection]) -> None:
        """Seed the tracker with the detector's output for ``frame_index``."""
        self._pyramid = self._build_pyramid(frame_index)
        self._frame_index = frame_index
        self._objects = []
        self._velocities = []
        for det in detections:
            if self._admit_detection(det, self.config.min_box_dim) is not None:
                self._velocities.append((0.0, 0.0))
        self._last_valid_blocks = 0

    def track_to(self, frame_index: int) -> TrackStep:
        """Propagate all objects to ``frame_index`` (must be ahead of current)."""
        if self._pyramid is None or self._frame_index is None:
            raise RuntimeError("tracker not initialised; call initialize() first")
        gap = frame_index - self._frame_index
        if gap <= 0:
            raise ValueError(
                f"can only track forwards: at {self._frame_index}, asked {frame_index}"
            )
        next_pyramid = self._build_pyramid(frame_index)

        velocity: float | None = None
        valid_blocks = 0
        alive_indices = [
            index for index, obj in enumerate(self._objects) if obj.alive
        ]
        if alive_indices:
            boxes = [self._objects[index].box for index in alive_indices]
            points, owners = box_block_centers(
                boxes, self.frame_width, self.frame_height, self.config.block.block_size
            )
            field_ = block_motion_field(
                self._pyramid, next_pyramid, points, self.config.block
            )
            valid_blocks = int(field_.valid.sum())
            velocity = motion_velocity(
                points, points + field_.vectors, gap, status=field_.valid
            )
            for slot, obj_index in enumerate(alive_indices):
                obj = self._objects[obj_index]
                mask = field_.valid & (owners == slot)
                if mask.any():
                    dx = float(np.median(field_.vectors[mask, 0]))
                    dy = float(np.median(field_.vectors[mask, 1]))
                    self._velocities[obj_index] = (dx / gap, dy / gap)
                elif self.config.extrapolate:
                    vx, vy = self._velocities[obj_index]
                    dx, dy = vx * gap, vy * gap
                else:
                    continue  # no measurement: the box goes stale
                obj.box = obj.box.shifted(dx, dy)
        self._kill_departed_objects()

        self._pyramid = next_pyramid
        self._frame_index = frame_index
        self._last_valid_blocks = valid_blocks
        return TrackStep(
            frame_index=frame_index,
            detections=self._current_detections(),
            velocity=velocity,
            num_features=valid_blocks,
            frame_gap=gap,
        )
