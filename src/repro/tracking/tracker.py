"""Optical-flow object tracker (paper §IV-C).

Workflow, mirroring the paper's six steps:

1. receive the detector's labels + boxes for frame ``n0``;
2. extract *good features to track* inside each bounding box (the paper
   masks the detected boxes so no feature lands on background);
3. guarantee at least one point per box (falling back to the box centre
   for texture-poor objects);
4. run pyramidal Lucas-Kanade to the next selected frame;
5. shift each box by its own features' median motion vector (per-object
   motion, not a global average — the paper is explicit about this);
6. move on to the next selected frame.

The tracker is *time-free*: its numpy runtime is not the Jetson TX2's.
The :class:`TrackerLatencyModel` carries the paper's measured costs
(Table II) and is charged by the pipeline simulator instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.geometry import Box
from repro.detection.detector import Detection
from repro.tracking.base import BoxTrackerBase, FrameProvider
from repro.tracking.motion import motion_velocity
from repro.vision.fast import fast_corners
from repro.vision.features import good_features_to_track
from repro.vision.optical_flow import FramePyramid, LKParams, track_features
from repro.vision.pyramid_cache import PyramidCache

# Tracker cost/fidelity tiers, cheapest last.  ``lk`` is the paper's
# pyramidal Lucas-Kanade tracker, ``mve`` the block-motion extrapolation
# tracker (DESIGN.md §12), and ``keyframe`` the serve layer's
# detect-keyframes-only overload mode, which runs no tracker at all.
TIER_LK = "lk"
TIER_MVE = "mve"
TIER_KEYFRAME = "keyframe"
TRACKER_TIERS = (TIER_LK, TIER_MVE, TIER_KEYFRAME)


@dataclass(frozen=True, slots=True)
class TrackerConfig:
    """Knobs of the object tracker.

    ``per_object_motion`` selects the paper's design (each object gets its
    own motion vector); setting it to ``False`` reproduces the global-vector
    alternative the paper argues against (ablation bench).
    ``max_features_per_object`` bounds the per-box feature budget; the paper
    reduces latency by using very few points per box.
    """

    max_features_per_object: int = 10
    quality_level: float = 0.05
    min_distance: float = 3.0
    # Pixels excluded at each ROI edge during good-features extraction.
    # ROI-edge responses straddle the box boundary (part background), so
    # corners found there track the background, not the object.
    feature_border: int = 1
    lk: LKParams = field(default_factory=LKParams)
    per_object_motion: bool = True
    min_box_dim: float = 3.0
    # Which corner detector seeds the tracker: "good_features" (Shi-Tomasi,
    # the paper's choice) or "fast" (the FAST alternative the paper
    # evaluated against; see benchmarks/test_ablation_features.py).
    feature_detector: str = "good_features"
    # Real-video propagation error model.  On real footage, sparse optical
    # flow systematically *under-propagates* fast deforming objects: part of
    # each window covers background or self-occluded texture, so the box
    # lags the object, and the error accumulates with time — the paper's
    # Fig. 2 measures F1 < 0.5 within 9 frames on a fast video.  A clean
    # synthetic world underestimates this (its texture is too trackable),
    # so the tracker scales each object's applied shift down by a lag
    # proportional to the *observed* Lucas-Kanade residual of the object's
    # features — an online observable that is near zero on slow rigid
    # content and large exactly where real flow fails.  Set
    # ``propagation_lag`` to 0 to disable (ablation bench).
    propagation_lag: float = 0.50
    lag_jitter: float = 0.22
    lag_residual_floor: float = 0.013
    lag_residual_span: float = 0.030

    def __post_init__(self) -> None:
        if self.max_features_per_object < 1:
            raise ValueError("max_features_per_object must be >= 1")
        if self.feature_border < 0:
            raise ValueError("feature_border must be >= 0")
        if self.feature_detector not in ("good_features", "fast"):
            raise ValueError(
                f"unknown feature detector {self.feature_detector!r}"
            )
        if self.propagation_lag < 0 or self.propagation_lag >= 1:
            raise ValueError("propagation_lag must be in [0, 1)")
        if self.lag_jitter < 0:
            raise ValueError("lag_jitter must be non-negative")


@dataclass(frozen=True, slots=True)
class TrackerLatencyModel:
    """Table II costs, in seconds, charged by the pipeline simulator.

    Good-feature extraction ~40 ms (once per detected frame); per-frame
    tracking 7–20 ms depending on object count; overlay/display ~50 ms per
    rendered frame.
    """

    feature_extraction: float = 0.040
    track_base: float = 0.0065
    track_per_object: float = 0.0016
    overlay: float = 0.050
    # MVE tier profile: block matching has a small fixed cost plus a
    # per-block cost (49+9+9 SAD candidates over three pyramid levels),
    # and needs no feature extraction at seed time.  ``mve_blocks_per_object``
    # is the proxy used when only an object count is known (serve layer,
    # admission planning); the MPDT simulator charges measured block
    # counts instead.
    mve_track_base: float = 0.0018
    mve_track_per_block: float = 0.00004
    mve_blocks_per_object: float = 9.0

    def track_latency(self, num_objects: int, tier: str = TIER_LK) -> float:
        """Tracking cost for one frame with ``num_objects`` objects.

        ``tier`` selects the tracker profile: ``lk`` (per-object LK cost,
        Table II), ``mve`` (block costs via the per-object block proxy),
        or ``keyframe`` (no tracker runs, so the cost is exactly zero —
        charging anything here double-bills frames that are simply
        dropped between keyframes).
        """
        if num_objects < 0:
            raise ValueError("num_objects must be non-negative")
        if tier == TIER_LK:
            return self.track_base + self.track_per_object * num_objects
        if tier == TIER_MVE:
            return self.mve_track_latency(
                round(self.mve_blocks_per_object * num_objects)
            )
        if tier == TIER_KEYFRAME:
            return 0.0
        raise ValueError(f"unknown tracker tier {tier!r}")

    def mve_track_latency(self, num_blocks: int) -> float:
        """MVE tracking cost for one frame matching ``num_blocks`` blocks."""
        if num_blocks < 0:
            raise ValueError("num_blocks must be non-negative")
        return self.mve_track_base + self.mve_track_per_block * num_blocks

    def seed_cost(self, tier: str = TIER_LK) -> float:
        """One-off cost of seeding a tracker from a detector result.

        LK pays good-feature extraction; MVE seeds from the boxes alone
        and keyframe-only mode never seeds a tracker.
        """
        if tier == TIER_LK:
            return self.feature_extraction
        if tier in (TIER_MVE, TIER_KEYFRAME):
            return 0.0
        raise ValueError(f"unknown tracker tier {tier!r}")

    def per_frame_cost(self, num_objects: int, tier: str = TIER_LK) -> float:
        """Full per-tracked-frame cost (tracking + overlay) for one tier.

        Keyframe-only mode tracks nothing and renders nothing between
        keyframes, so its per-frame cost is zero rather than an LK bill
        for work that never happens.
        """
        if tier == TIER_KEYFRAME:
            return 0.0
        return self.track_latency(num_objects, tier) + self.overlay


@dataclass(frozen=True, slots=True)
class TrackStep:
    """Result of propagating the tracked objects to one frame."""

    frame_index: int
    detections: tuple[Detection, ...]
    velocity: float | None
    num_features: int
    frame_gap: int


class ObjectTracker(BoxTrackerBase):
    """Tracks the objects of one detected frame through later frames.

    One instance handles one detection cycle: ``initialize`` with the
    detector output, then ``track_to`` each selected frame in increasing
    order.  A new cycle creates a fresh instance (matching the paper, where
    each DNN result re-seeds the tracker).
    """

    def __init__(
        self,
        frame_provider: FrameProvider,
        frame_width: int,
        frame_height: int,
        config: TrackerConfig | None = None,
        seed: int = 0,
        pyramid_cache: PyramidCache | None = None,
    ) -> None:
        super().__init__(frame_provider, frame_width, frame_height)
        self.config = config or TrackerConfig()
        # Optional clip-scoped cache shared across tracker generations: the
        # pipeline re-seeds a fresh ObjectTracker every detection cycle, and
        # without the cache each generation rebuilds pyramids the previous
        # one already built.  Must only be shared between trackers reading
        # the same clip (keys are frame indices).
        self._pyramid_cache = pyramid_cache
        self._rng = np.random.default_rng(np.random.SeedSequence(entropy=seed))
        self._points = np.zeros((0, 2), dtype=np.float64)
        self._owners = np.zeros(0, dtype=np.intp)
        self._pyramid: FramePyramid | None = None

    # -- setup -------------------------------------------------------------------

    @property
    def num_features(self) -> int:
        return int(self._points.shape[0])

    def _extract_box_features(
        self, frame: np.ndarray, box: Box
    ) -> np.ndarray:
        """Good features inside one box (coordinates in full-frame space)."""
        rows, cols = box.pixel_slice(frame.shape)
        roi = frame[rows, cols]
        if roi.shape[0] < 6 or roi.shape[1] < 6:
            return np.zeros((0, 2), dtype=np.float64)
        if self.config.feature_detector == "fast":
            corners = fast_corners(
                roi,
                max_corners=self.config.max_features_per_object,
                min_distance=self.config.min_distance,
            )
        else:
            corners = good_features_to_track(
                roi,
                max_corners=self.config.max_features_per_object,
                quality_level=self.config.quality_level,
                min_distance=self.config.min_distance,
                border=self.config.feature_border,
            )
        if corners.shape[0] == 0:
            return corners
        corners = corners + np.asarray([cols.start, rows.start], dtype=np.float64)
        return corners

    def _build_pyramid(self, frame_index: int) -> FramePyramid:
        levels = self.config.lk.pyramid_levels
        if self._pyramid_cache is None:
            return FramePyramid(self._frames(frame_index), levels)
        return self._pyramid_cache.get(frame_index, levels, self._frames)

    def initialize(self, frame_index: int, detections: Sequence[Detection]) -> None:
        """Seed the tracker with the detector's output for ``frame_index``."""
        frame = self._frames(frame_index)
        self._pyramid = self._build_pyramid(frame_index)
        self._frame_index = frame_index
        self._objects = []
        points: list[np.ndarray] = []
        owners: list[np.ndarray] = []
        for det in detections:
            obj = self._admit_detection(det, self.config.min_box_dim)
            if obj is None:
                continue
            index = len(self._objects) - 1
            corners = self._extract_box_features(frame, obj.box)
            if corners.shape[0] == 0:
                # Texture-poor object: fall back to its centre point so it
                # still has a motion estimate (the paper guarantees one
                # feature per box).
                corners = np.asarray([obj.box.center], dtype=np.float64)
            points.append(corners)
            owners.append(np.full(corners.shape[0], index, dtype=np.intp))
        if points:
            self._points = np.concatenate(points, axis=0)
            self._owners = np.concatenate(owners, axis=0)
        else:
            self._points = np.zeros((0, 2), dtype=np.float64)
            self._owners = np.zeros(0, dtype=np.intp)

    # -- tracking ----------------------------------------------------------------

    def track_to(self, frame_index: int) -> TrackStep:
        """Propagate all objects to ``frame_index`` (must be ahead of current)."""
        if self._pyramid is None or self._frame_index is None:
            raise RuntimeError("tracker not initialised; call initialize() first")
        gap = frame_index - self._frame_index
        if gap <= 0:
            raise ValueError(
                f"can only track forwards: at {self._frame_index}, asked {frame_index}"
            )
        next_pyramid = self._build_pyramid(frame_index)

        velocity: float | None = None
        if self._points.shape[0] > 0:
            result = track_features(
                self._pyramid, next_pyramid, self._points, self.config.lk
            )
            velocity = motion_velocity(
                self._points, result.points, gap, status=result.status
            )
            self._apply_motion(result.points, result.status, result.residual)
            # Keep only surviving features for the next step.
            keep = result.status
            self._points = result.points[keep]
            self._owners = self._owners[keep]
        self._kill_departed_objects()

        self._pyramid = next_pyramid
        self._frame_index = frame_index
        return TrackStep(
            frame_index=frame_index,
            detections=self._current_detections(),
            velocity=velocity,
            num_features=self.num_features,
            frame_gap=gap,
        )

    def _lag_factor(self, residuals: np.ndarray) -> float:
        """Propagation lag in [0, propagation_lag] from observed residuals."""
        cfg = self.config
        if cfg.propagation_lag <= 0 or residuals.size == 0:
            return 0.0
        mean_residual = float(np.mean(residuals))
        severity = (mean_residual - cfg.lag_residual_floor) / cfg.lag_residual_span
        return cfg.propagation_lag * float(np.clip(severity, 0.0, 1.0))

    def _degraded_shift(
        self, dx: float, dy: float, residuals: np.ndarray
    ) -> tuple[float, float]:
        """Apply the real-video propagation-error model to one box shift."""
        lag = self._lag_factor(residuals)
        if lag <= 0.0:
            return dx, dy
        magnitude = float(np.hypot(dx, dy))
        jitter_scale = self.config.lag_jitter * lag / max(self.config.propagation_lag, 1e-9)
        noise = self._rng.normal(0.0, jitter_scale * magnitude, size=2)
        return dx * (1.0 - lag) + float(noise[0]), dy * (1.0 - lag) + float(noise[1])

    def _apply_motion(
        self, new_points: np.ndarray, status: np.ndarray, residuals: np.ndarray
    ) -> None:
        deltas = new_points - self._points
        if self.config.per_object_motion:
            for index, obj in enumerate(self._objects):
                if not obj.alive:
                    continue
                mask = status & (self._owners == index)
                if not mask.any():
                    continue  # no surviving features: the box goes stale
                dx = float(np.median(deltas[mask, 0]))
                dy = float(np.median(deltas[mask, 1]))
                dx, dy = self._degraded_shift(dx, dy, residuals[mask])
                obj.box = obj.box.shifted(dx, dy)
        else:
            # Ablation mode: one global motion vector for every object.
            if not status.any():
                return
            dx = float(np.median(deltas[status, 0]))
            dy = float(np.median(deltas[status, 1]))
            dx, dy = self._degraded_shift(dx, dy, residuals[status])
            for obj in self._objects:
                if obj.alive:
                    obj.box = obj.box.shifted(dx, dy)

    def _kill_departed_objects(self) -> bool:
        """Drop objects that have mostly left the frame, and their features."""
        changed = super()._kill_departed_objects()
        if changed and self._points.shape[0] > 0:
            alive = np.asarray(
                [self._objects[owner].alive for owner in self._owners], dtype=bool
            )
            self._points = self._points[alive]
            self._owners = self._owners[alive]
        return changed
