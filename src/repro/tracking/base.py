"""Shared box-propagation machinery for object trackers.

Both trackers — pyramidal-LK :class:`~repro.tracking.tracker.ObjectTracker`
and block-motion :class:`~repro.tracking.mve.MVETracker` — manage the same
object state between detector refreshes: admit the detector's boxes
(clipped to the frame, too-small boxes dropped), shift live boxes by an
estimated motion, kill objects that have mostly left the frame, and report
the survivors as detections.  That geometry lives here once; the
subclasses differ only in *how* they estimate per-object motion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.detection.detector import Detection
from repro.geometry import Box, clip_box

FrameProvider = Callable[[int], np.ndarray]

# Fraction of a box that must remain in-frame for the object to stay alive.
_DEPARTURE_VISIBLE_FRACTION = 0.2


@dataclass
class _TrackedObject:
    label: str
    confidence: float
    box: Box
    alive: bool = True


class BoxTrackerBase:
    """Object-list bookkeeping shared by every box tracker.

    Subclasses implement ``initialize``/``track_to`` and call into the
    helpers here: :meth:`_admit_detection` when seeding,
    :meth:`_kill_departed_objects` after applying motion, and
    :meth:`_current_detections` to emit results.
    """

    def __init__(
        self,
        frame_provider: FrameProvider,
        frame_width: int,
        frame_height: int,
    ) -> None:
        self._frames = frame_provider
        self.frame_width = frame_width
        self.frame_height = frame_height
        self._objects: list[_TrackedObject] = []
        self._frame_index: int | None = None

    @property
    def current_frame_index(self) -> int | None:
        return self._frame_index

    @property
    def num_objects(self) -> int:
        return sum(1 for obj in self._objects if obj.alive)

    def _admit_detection(
        self, detection: Detection, min_box_dim: float
    ) -> _TrackedObject | None:
        """Clip a detector box to the frame and admit it if large enough.

        Returns the appended object, or ``None`` when the clipped box is
        thinner than ``min_box_dim`` on either axis (the caller skips it).
        """
        box = clip_box(detection.box, self.frame_width, self.frame_height)
        if box.width < min_box_dim or box.height < min_box_dim:
            return None
        obj = _TrackedObject(
            label=detection.label, confidence=detection.confidence, box=box
        )
        self._objects.append(obj)
        return obj

    def _current_detections(self) -> tuple[Detection, ...]:
        output = []
        for obj in self._objects:
            if not obj.alive:
                continue
            box = clip_box(obj.box, self.frame_width, self.frame_height)
            if box.area <= 0:
                continue
            output.append(
                Detection(label=obj.label, box=box, confidence=obj.confidence)
            )
        return tuple(output)

    def _kill_departed_objects(self) -> bool:
        """Mark objects that have mostly left the frame as dead.

        Returns whether anything died, so subclasses can drop per-object
        auxiliary state (the LK tracker prunes its feature points).
        """
        changed = False
        for obj in self._objects:
            if not obj.alive:
                continue
            clipped = clip_box(obj.box, self.frame_width, self.frame_height)
            if (
                obj.box.area <= 0
                or clipped.area / obj.box.area < _DEPARTURE_VISIBLE_FRACTION
            ):
                obj.alive = False
                changed = True
        return changed
