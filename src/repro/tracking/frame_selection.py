"""Tracking-frame selection (paper §IV-C, "Tracking Frame Selection").

Per-frame tracking + overlay costs more than the camera frame interval
(Observation 4), so the tracker only processes a subset of the buffered
frames, at regular intervals, and the untouched frames reuse the previous
result.  The subset size is predicted from the previous cycle: MPDT
computes the achieved fraction ``p = h_{t-1} / f_{t-1}`` and plans
``h_t = p * f_t`` frames for the current cycle.
"""

from __future__ import annotations

import numpy as np


def select_spread_indices(start: int, stop: int, count: int) -> list[int]:
    """Pick ``count`` frame indices spread evenly over ``[start, stop)``.

    The *last* frame of the range is always included when ``count >= 1``:
    ending a cycle on the most recent frame keeps the display as fresh as
    possible and anchors the next velocity measurement.  Returns an empty
    list when the range is empty or ``count <= 0``.
    """
    length = stop - start
    if length <= 0 or count <= 0:
        return []
    count = min(count, length)
    # Evenly spaced positions ending exactly at stop-1.
    positions = np.linspace(start + length / count - 1, stop - 1, count)
    indices = sorted({int(round(p)) for p in positions})
    # Rounding can merge neighbours; top up from unused indices if needed.
    if len(indices) < count:
        unused = [i for i in range(start, stop) if i not in set(indices)]
        indices.extend(unused[: count - len(indices)])
        indices.sort()
    return indices


class TrackingFrameSelector:
    """Predicts how many buffered frames the tracker can handle per cycle.

    The first cycle has no history, so the initial fraction comes from the
    latency model: with a per-tracked-frame cost of ``c`` seconds and a
    camera interval of ``dt``, the tracker keeps pace at ``p ~= dt / c``.
    After each cycle the caller reports what was actually achieved and the
    prediction follows the paper's ``p = h_{t-1} / f_{t-1}`` rule, smoothed
    slightly to avoid oscillation when object counts jump between cycles.
    """

    def __init__(
        self,
        initial_fraction: float,
        smoothing: float = 0.0,
        min_fraction: float = 0.05,
        frozen: bool = False,
    ) -> None:
        if not 0 < initial_fraction:
            raise ValueError("initial_fraction must be positive")
        if not 0.0 <= smoothing < 1.0:
            raise ValueError("smoothing must be in [0, 1)")
        self._fraction = min(1.0, initial_fraction)
        self._smoothing = smoothing
        self._min_fraction = min_fraction
        # frozen=True disables the paper's p = h/f update — the fixed-skip
        # alternative the frame-selection ablation bench compares against.
        self.frozen = frozen
        self.history: list[tuple[int, int]] = []

    @property
    def fraction(self) -> float:
        """The current predicted trackable fraction ``p``."""
        return self._fraction

    def plan(self, buffered_frames: int) -> int:
        """How many of ``buffered_frames`` to track this cycle (``h_t``)."""
        if buffered_frames < 0:
            raise ValueError("buffered_frames must be non-negative")
        if buffered_frames == 0:
            return 0
        return max(1, min(buffered_frames, int(round(self._fraction * buffered_frames))))

    def record_cycle(self, tracked: int, buffered_frames: int) -> None:
        """Report the achieved ``(h_{t-1}, f_{t-1})`` of the finished cycle."""
        if tracked < 0 or buffered_frames < 0:
            raise ValueError("counts must be non-negative")
        if tracked > buffered_frames:
            raise ValueError("cannot track more frames than were buffered")
        self.history.append((tracked, buffered_frames))
        if self.frozen or buffered_frames == 0:
            return
        achieved = max(self._min_fraction, tracked / buffered_frames)
        self._fraction = (
            self._smoothing * self._fraction + (1.0 - self._smoothing) * achieved
        )
        self._fraction = min(1.0, self._fraction)
