"""Video-content change rate from tracker intermediate results (Eq. 3).

The metric is the mean per-frame motion magnitude of the tracked feature
points::

    v_{i,j} = sum_k |f_i^k - f_j^k|  /  (M * (j - i))

normalised by the frame gap ``j - i`` because the tracker skips frames.
It is "almost free" (paper §IV-D2): the displacements already exist as the
tracker's output.
"""

from __future__ import annotations

import numpy as np


def motion_velocity(
    prev_points: np.ndarray,
    next_points: np.ndarray,
    frame_gap: int,
    status: np.ndarray | None = None,
) -> float | None:
    """Eq. 3: mean feature displacement per frame between two tracked frames.

    ``prev_points``/``next_points`` are ``(M, 2)`` positions of the same
    features in the earlier and later frame; ``frame_gap`` is ``j - i``.
    ``status`` optionally restricts to successfully tracked features.
    Returns ``None`` when no feature survives — the caller decides how to
    handle an unmeasurable chunk.
    """
    if frame_gap <= 0:
        raise ValueError("frame_gap must be positive")
    prev_points = np.asarray(prev_points, dtype=np.float64).reshape(-1, 2)
    next_points = np.asarray(next_points, dtype=np.float64).reshape(-1, 2)
    if prev_points.shape != next_points.shape:
        raise ValueError("point arrays must have matching shapes")
    if status is not None:
        mask = np.asarray(status, dtype=bool)
        prev_points = prev_points[mask]
        next_points = next_points[mask]
    if prev_points.shape[0] == 0:
        return None
    displacement = np.hypot(
        next_points[:, 0] - prev_points[:, 0], next_points[:, 1] - prev_points[:, 1]
    )
    return float(displacement.mean() / frame_gap)


class MotionVelocityEstimator:
    """Accumulates per-step velocity samples over one detection cycle.

    AdaVP decides the *next* DNN setting from the velocity measured during
    the *current* cycle (§IV-D3), so the pipeline resets this estimator at
    each cycle boundary and reads the aggregate at the end.
    """

    def __init__(self) -> None:
        self._samples: list[float] = []

    def add_step(
        self,
        prev_points: np.ndarray,
        next_points: np.ndarray,
        frame_gap: int,
        status: np.ndarray | None = None,
    ) -> float | None:
        sample = motion_velocity(prev_points, next_points, frame_gap, status)
        if sample is not None:
            self._samples.append(sample)
        return sample

    def add_sample(self, velocity: float) -> None:
        if velocity < 0:
            raise ValueError("velocity must be non-negative")
        self._samples.append(velocity)

    @property
    def num_samples(self) -> int:
        return len(self._samples)

    def cycle_velocity(self) -> float | None:
        """Mean velocity over the cycle, or ``None`` if nothing was tracked."""
        if not self._samples:
            return None
        return float(np.mean(self._samples))

    def peak_velocity(self) -> float | None:
        """The cycle's highest per-step velocity, or ``None``.

        Fast objects shed tracked features quickly, so later steps of a
        cycle measure mostly the slow survivors; the mean then
        under-reports exactly the content the adaptation must react to.
        The peak is robust to that survivor bias, and is what the AdaVP
        pipeline feeds to the adaptation module.
        """
        if not self._samples:
            return None
        return float(np.max(self._samples))

    def last_sample(self) -> float | None:
        return self._samples[-1] if self._samples else None

    def reset(self) -> None:
        self._samples.clear()
