"""The paper's object tracker (§IV-C).

Feature extraction (Shi-Tomasi, masked to detected boxes), pyramidal
Lucas-Kanade propagation, per-object motion vectors, tracking-frame
selection, and the Eq. 3 content-change velocity metric.
"""

from repro.tracking.tracker import (
    ObjectTracker,
    TrackerConfig,
    TrackerLatencyModel,
    TrackStep,
)
from repro.tracking.frame_selection import TrackingFrameSelector, select_spread_indices
from repro.tracking.motion import MotionVelocityEstimator, motion_velocity

__all__ = [
    "ObjectTracker",
    "TrackerConfig",
    "TrackerLatencyModel",
    "TrackStep",
    "TrackingFrameSelector",
    "select_spread_indices",
    "MotionVelocityEstimator",
    "motion_velocity",
]
