"""The paper's object tracker (§IV-C).

Feature extraction (Shi-Tomasi, masked to detected boxes), pyramidal
Lucas-Kanade propagation, per-object motion vectors, tracking-frame
selection, and the Eq. 3 content-change velocity metric.
"""

from repro.tracking.base import BoxTrackerBase
from repro.tracking.tracker import (
    ObjectTracker,
    TrackerConfig,
    TrackerLatencyModel,
    TrackStep,
    TIER_KEYFRAME,
    TIER_LK,
    TIER_MVE,
    TRACKER_TIERS,
)
from repro.tracking.mve import MVETracker, MVETrackerConfig
from repro.tracking.frame_selection import TrackingFrameSelector, select_spread_indices
from repro.tracking.motion import MotionVelocityEstimator, motion_velocity

__all__ = [
    "BoxTrackerBase",
    "ObjectTracker",
    "TrackerConfig",
    "TrackerLatencyModel",
    "TrackStep",
    "MVETracker",
    "MVETrackerConfig",
    "TIER_KEYFRAME",
    "TIER_LK",
    "TIER_MVE",
    "TRACKER_TIERS",
    "TrackingFrameSelector",
    "select_spread_indices",
    "MotionVelocityEstimator",
    "motion_velocity",
]
