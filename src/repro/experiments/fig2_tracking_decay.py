"""Fig. 2: tracking accuracy over frames for a fast and a slow video.

YOLOv3-608 detects frame 0; the tracker then follows the objects through
the subsequent frames.  Averaged over ``repeats`` runs (the paper uses 10)
per video.  The fast video's F1 must cross 0.5 far earlier than the slow
one's — the observation that motivates model adaptation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detection import SimulatedYOLOv3
from repro.experiments.report import format_series
from repro.metrics.matching import f1_score
from repro.tracking import ObjectTracker
from repro.video.dataset import make_clip


@dataclass(frozen=True)
class Fig2Result:
    fast_series: np.ndarray
    slow_series: np.ndarray
    horizon: int

    @staticmethod
    def _crossing(series: np.ndarray, level: float) -> int | None:
        below = np.nonzero(series < level)[0]
        return int(below[0]) if below.size else None

    @property
    def fast_crossing(self) -> int | None:
        """First frame where the fast video's tracking F1 drops below 0.5."""
        return self._crossing(self.fast_series, 0.5)

    @property
    def slow_crossing(self) -> int | None:
        return self._crossing(self.slow_series, 0.5)

    def report(self) -> str:
        frames = list(range(self.horizon))
        parts = [
            format_series(
                "Fig. 2 — tracking F1, fast video (Video1)",
                frames, self.fast_series, "frame", "F1",
            ),
            format_series(
                "Fig. 2 — tracking F1, slow video (Video2)",
                frames, self.slow_series, "frame", "F1",
            ),
            f"F1<0.5 after: fast={self.fast_crossing} frames, "
            f"slow={self.slow_crossing} frames (paper: 9 vs 27)",
        ]
        return "\n\n".join(parts)


def _decay_series(
    scenario: str, horizon: int, repeats: int, seed: int
) -> np.ndarray:
    runs = []
    for rep in range(repeats):
        clip = make_clip(scenario, seed=seed + 13 * rep, num_frames=horizon + 1)
        detector = SimulatedYOLOv3("yolov3-608", seed=rep)
        ann0 = clip.annotation(0)
        detection = detector.detect(ann0)
        tracker = ObjectTracker(
            clip.frame, clip.config.frame_width, clip.config.frame_height, seed=rep
        )
        tracker.initialize(0, detection.detections)
        scores = [f1_score(detection.detections, ann0)]
        for frame in range(1, horizon):
            step = tracker.track_to(frame)
            scores.append(f1_score(step.detections, clip.annotation(frame)))
        runs.append(scores)
    return np.mean(runs, axis=0)


def run(
    fast_scenario: str = "racetrack",
    slow_scenario: str = "residential",
    horizon: int = 35,
    repeats: int = 10,
    seed: int = 3,
) -> Fig2Result:
    return Fig2Result(
        fast_series=_decay_series(fast_scenario, horizon, repeats, seed),
        slow_series=_decay_series(slow_scenario, horizon, repeats, seed),
        horizon=horizon,
    )


if __name__ == "__main__":
    print(run().report())
