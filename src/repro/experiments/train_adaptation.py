"""Regenerate the pretrained adaptation thresholds.

Usage::

    python -m repro.experiments.train_adaptation [--quick]

Runs fixed-setting MPDT at all four sizes over the training corpus, fits
the per-setting velocity thresholds (paper §IV-D3), and prints the table
in the exact format of ``repro/core/pretrained.py``.  ``--quick`` uses the
small corpus (a few minutes); the default uses the enlarged corpus the
shipped constants were trained on.
"""

from __future__ import annotations

import argparse
import time

from repro.core.adaptation import collect_training_data, train_threshold_table
from repro.experiments.workloads import make_phase_clip, training_suite
from repro.video.dataset import VideoSuite


def enlarged_training_suite() -> VideoSuite:
    """Two seeds per scenario family plus extra phased clips (34 clips)."""
    base = training_suite(seed=101, frames=240)
    extra = training_suite(seed=401, frames=240)
    clips = base.clips + extra.clips
    clips.append(
        make_phase_clip(
            "highway_surveillance", 777, 240,
            calm_until=0.4, speed_scale=0.45, rate_scale=0.7,
        )
    )
    clips.append(make_phase_clip("wildlife", 778, 240, speed_scale=2.0))
    return VideoSuite(name="training-enlarged", clips=clips)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="train on the small corpus (16 clips instead of 34)",
    )
    args = parser.parse_args(argv)

    started = time.time()
    suite = training_suite() if args.quick else enlarged_training_suite()
    print(f"training on {len(suite)} clips, {suite.total_frames} frames ...")
    records = collect_training_data(suite.clips)
    table = train_threshold_table(records)
    print(f"done in {time.time() - started:.0f}s; paste into core/pretrained.py:")
    print("DEFAULT_THRESHOLD_TABLE: ThresholdTable = {")
    for name in ("yolov3-608", "yolov3-512", "yolov3-416", "yolov3-320"):
        th = table[name]
        print(
            f'    "{name}": VelocityThresholds('
            f"v1={th.v1:.3f}, v2={th.v2:.3f}, v3={th.v3:.3f}),"
        )
    print("}")


if __name__ == "__main__":
    main()
