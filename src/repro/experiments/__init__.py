"""Benchmark harness: workloads, method registry, and per-figure runners.

Every table and figure of the paper's evaluation (§VI) has a runner module
here and a corresponding bench in ``benchmarks/``; see DESIGN.md's
experiment index for the mapping.

All runners accept ``jobs=N`` and route their (method × clip) grids
through :mod:`repro.parallel` (DESIGN.md §8); ``run_sweep`` is re-exported
here for convenience.
"""

from repro.experiments.workloads import (
    evaluation_suite,
    quick_suite,
    training_suite,
)
from repro.experiments.runners import (
    METHODS,
    MethodResult,
    evaluate_run,
    make_method,
    run_method_on_clip,
    run_method_on_suite,
)
from repro.parallel import SweepEngine, SweepResult, run_sweep

__all__ = [
    "evaluation_suite",
    "quick_suite",
    "training_suite",
    "METHODS",
    "MethodResult",
    "evaluate_run",
    "make_method",
    "run_method_on_clip",
    "run_method_on_suite",
    "SweepEngine",
    "SweepResult",
    "run_sweep",
]
