"""Benchmark harness: workloads, method registry, and per-figure runners.

Every table and figure of the paper's evaluation (§VI) has a runner module
here and a corresponding bench in ``benchmarks/``; see DESIGN.md's
experiment index for the mapping.
"""

from repro.experiments.workloads import (
    evaluation_suite,
    quick_suite,
    training_suite,
)
from repro.experiments.runners import (
    METHODS,
    MethodResult,
    evaluate_run,
    make_method,
    run_method_on_clip,
    run_method_on_suite,
)

__all__ = [
    "evaluation_suite",
    "quick_suite",
    "training_suite",
    "METHODS",
    "MethodResult",
    "evaluate_run",
    "make_method",
    "run_method_on_clip",
    "run_method_on_suite",
]
