"""Fig. 1: detection latency (bars) and accuracy (stars) per frame size.

The paper runs YOLOv3 over 4 000 frames at each input size and reports the
mean per-frame processing latency and F1.  This runner does the same over
a mixed-scenario frame sample.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detection import SimulatedYOLOv3
from repro.detection.profiles import FRAME_SIZES, get_profile
from repro.experiments.report import format_table
from repro.metrics.matching import f1_score
from repro.video.dataset import make_clip
from repro.video.library import list_scenarios


@dataclass(frozen=True)
class Fig1Row:
    setting: str
    mean_latency_ms: float
    mean_f1: float


@dataclass(frozen=True)
class Fig1Result:
    rows: tuple[Fig1Row, ...]
    num_frames: int

    def report(self) -> str:
        return format_table(
            "Fig. 1 — detection latency and accuracy per frame size",
            ("setting", "latency_ms", "mean_F1"),
            [(r.setting, round(r.mean_latency_ms, 1), r.mean_f1) for r in self.rows],
        )


def run(num_frames: int = 4000, seed: int = 17) -> Fig1Result:
    """Detect ``num_frames`` mixed-scenario frames at each input size."""
    per_clip = max(30, num_frames // len(list_scenarios()))
    annotations = []
    for i, name in enumerate(list_scenarios()):
        clip = make_clip(name, seed=seed + i, num_frames=per_clip)
        annotations.extend(clip.annotation(j) for j in range(per_clip))
    annotations = annotations[:num_frames]

    rows = []
    for size in sorted(FRAME_SIZES):
        profile = get_profile(size)
        detector = SimulatedYOLOv3(profile.name, seed=seed)
        latencies, scores = [], []
        for annotation in annotations:
            result = detector.detect(annotation)
            latencies.append(result.latency)
            scores.append(f1_score(result.detections, annotation))
        rows.append(
            Fig1Row(
                setting=profile.name,
                mean_latency_ms=float(np.mean(latencies)) * 1e3,
                mean_f1=float(np.mean(scores)),
            )
        )
    return Fig1Result(rows=tuple(rows), num_frames=len(annotations))


if __name__ == "__main__":
    print(run().report())
