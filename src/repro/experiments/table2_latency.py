"""Table II: per-component processing latencies.

The detection row comes from the calibrated profiles (230-500 ms); the
tracker rows come from the Table II latency model evaluated over the
object-count range a real run observes; the observed detection latencies
are cross-checked against an actual pipeline run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import PipelineConfig
from repro.detection.profiles import get_profile
from repro.experiments.report import format_table
from repro.parallel import run_sweep
from repro.video.dataset import VideoSuite, make_clip


@dataclass(frozen=True)
class Table2Row:
    component: str
    time_ms: str


@dataclass(frozen=True)
class Table2Result:
    rows: tuple[Table2Row, ...]
    observed_detection_ms: tuple[float, float]

    def report(self) -> str:
        table = format_table(
            "Table II — latency of detection and tracking for one frame",
            ("component", "time (ms)"),
            [(r.component, r.time_ms) for r in self.rows],
        )
        low, high = self.observed_detection_ms
        return (
            f"{table}\n"
            f"(observed detection latency in an MPDT run: "
            f"{low:.0f}-{high:.0f} ms)"
        )


def run(
    seed: int = 5,
    num_frames: int = 240,
    config: PipelineConfig | None = None,
    jobs: int = 1,
) -> Table2Result:
    config = config if config is not None else PipelineConfig()
    latency = config.latency
    detection_low = get_profile(320).base_latency * 1e3
    detection_high = get_profile(608).expected_latency(8) * 1e3
    rows = (
        Table2Row(
            "YOLOv3 detection latency",
            f"{detection_low:.0f}-{detection_high:.0f}",
        ),
        Table2Row(
            "Good feature extraction", f"{latency.feature_extraction * 1e3:.0f}"
        ),
        Table2Row(
            "Tracking latency",
            f"{latency.track_latency(0) * 1e3:.0f}-{latency.track_latency(9) * 1e3:.0f}",
        ),
        Table2Row("Overlay latency", f"{latency.overlay * 1e3:.0f}"),
    )

    # Cross-check: observed detection latencies in a real pipeline run, at
    # the smallest and largest settings.
    clip = make_clip("intersection", seed=seed, num_frames=num_frames)
    suite = VideoSuite(name="table2-crosscheck", clips=[clip])
    sweep = run_sweep(
        ("mpdt-320", "mpdt-608"), suite, config=config, keep_runs=True, jobs=jobs
    )
    sweep.raise_if_failed()
    observed = [
        c.detection_latency
        for result in sweep.results.values()
        for run_ in result.runs
        for c in run_.cycles
    ]
    return Table2Result(
        rows=rows,
        observed_detection_ms=(min(observed) * 1e3, max(observed) * 1e3),
    )


if __name__ == "__main__":
    print(run().report())
