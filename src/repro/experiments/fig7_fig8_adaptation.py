"""Fig. 7 and Fig. 8: AdaVP's switching cadence and setting usage.

Fig. 7 is the CDF of the number of cycles between consecutive model-setting
switches (paper: ~50 % of switches happen after one cycle; 90 % within 20).
Fig. 8 is the fraction of cycles run under each setting (paper: 512 and 608
dominate; the other two sit around 10 % each).

Both come from the same set of AdaVP runs over the evaluation suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import PipelineConfig
from repro.experiments.report import format_series, format_table
from repro.experiments.runners import run_method_on_suite
from repro.experiments.workloads import evaluation_suite
from repro.video.dataset import VideoSuite


@dataclass(frozen=True)
class AdaptationBehaviour:
    switch_gaps: tuple[int, ...]
    usage: dict[str, int]

    # -- Fig. 7 ----------------------------------------------------------------

    def cdf(self, points: tuple[int, ...] = (1, 2, 5, 10, 20, 40)) -> list[tuple[int, float]]:
        if not self.switch_gaps:
            return [(p, 0.0) for p in points]
        gaps = np.asarray(self.switch_gaps)
        return [(p, float(np.mean(gaps <= p))) for p in points]

    @property
    def median_gap(self) -> float:
        return float(np.median(self.switch_gaps)) if self.switch_gaps else float("nan")

    # -- Fig. 8 ----------------------------------------------------------------

    def usage_fractions(self) -> dict[str, float]:
        total = sum(self.usage.values())
        if total == 0:
            return {}
        return {name: count / total for name, count in sorted(self.usage.items())}

    def report(self) -> str:
        cdf = self.cdf()
        fig7 = format_series(
            "Fig. 7 — CDF of cycles per model-setting switch",
            [p for p, _ in cdf],
            [v for _, v in cdf],
            "cycles<=", "P",
        )
        fractions = self.usage_fractions()
        fig8 = format_table(
            "Fig. 8 — usage share per model setting",
            ("setting", "share"),
            [(name, share) for name, share in fractions.items()],
        )
        return f"{fig7}\n\n{fig8}\nmedian switch gap: {self.median_gap:.1f} cycles"


def run(
    suite: VideoSuite | None = None,
    config: PipelineConfig | None = None,
    jobs: int = 1,
) -> AdaptationBehaviour:
    suite = suite or evaluation_suite()
    result = run_method_on_suite("adavp", suite, config, keep_runs=True, jobs=jobs)
    gaps: list[int] = []
    usage: dict[str, int] = {}
    for run_ in result.runs:
        gaps.extend(run_.cycles_between_switches())
        for name, count in run_.profile_usage().items():
            usage[name] = usage.get(name, 0) + count
    return AdaptationBehaviour(switch_gaps=tuple(gaps), usage=usage)


if __name__ == "__main__":
    print(run().report())
