"""Method registry and suite-level evaluation helpers.

A *method* is anything with ``run(clip) -> PipelineRun``; the registry maps
the paper's method names ("adavp", "mpdt-512", "marlin-512",
"no-tracking-608", "continuous-tiny-320", ...) to factories so every bench
builds methods the same way, with the same shared :class:`PipelineConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.baselines.continuous import ContinuousDetectionPipeline
from repro.baselines.marlin import MarlinConfig, MarlinPipeline
from repro.baselines.no_tracking import NoTrackingPipeline
from repro.core.adavp import AdaVP
from repro.core.config import PipelineConfig
from repro.core.mpdt import FixedSettingPolicy, MPDTPipeline
from repro.metrics.accuracy import frame_f1_series, video_accuracy
from repro.metrics.energy import ActivityLog, EnergyBreakdown, TX2_POWER_MODEL
from repro.runtime.simulator import PipelineRun
from repro.video.dataset import VideoClip, VideoSuite

_SETTINGS = (320, 416, 512, 608)


def _with_mve_tier(config: PipelineConfig) -> PipelineConfig:
    from repro.tracking.tracker import TIER_MVE

    return replace(config, tracker_tier=TIER_MVE)


def _adavp_factory(name: str, config: PipelineConfig, kwargs: dict):
    return AdaVP(config=config, **kwargs)


def _mve_factory(name: str, config: PipelineConfig, kwargs: dict):
    """AdaVP adaptation over the block-motion fast tier (DESIGN.md §12)."""
    return AdaVP(config=_with_mve_tier(config), method_name=name, **kwargs)


def _mpdt_factory(setting: int):
    def build(name: str, config: PipelineConfig, kwargs: dict):
        return MPDTPipeline(
            FixedSettingPolicy(setting), config, method_name=name, **kwargs
        )

    return build


def _mpdt_mve_factory(setting: int):
    def build(name: str, config: PipelineConfig, kwargs: dict):
        return MPDTPipeline(
            FixedSettingPolicy(setting),
            _with_mve_tier(config),
            method_name=name,
            **kwargs,
        )

    return build


def _marlin_factory(setting: int):
    def build(name: str, config: PipelineConfig, kwargs: dict):
        marlin_cfg = kwargs.pop("marlin", None) or MarlinConfig(setting=setting)
        return MarlinPipeline(marlin_cfg, config, method_name=name, **kwargs)

    return build


def _no_tracking_factory(setting: int):
    def build(name: str, config: PipelineConfig, kwargs: dict):
        return NoTrackingPipeline(setting, config, method_name=name, **kwargs)

    return build


def _continuous_factory(setting: str):
    def build(name: str, config: PipelineConfig, kwargs: dict):
        return ContinuousDetectionPipeline(setting, config, method_name=name, **kwargs)

    return build


def _build_registry():
    """Every method name the benches understand, parsed once up front.

    Each entry is ``name -> factory(name, config, kwargs)``; settings are
    bound here rather than re-derived from the name at construction time.
    """
    registry = {"adavp": _adavp_factory, "mve": _mve_factory}
    for setting in _SETTINGS:
        registry[f"mpdt-{setting}"] = _mpdt_factory(setting)
    for setting in _SETTINGS:
        registry[f"mpdt-mve-{setting}"] = _mpdt_mve_factory(setting)
    for setting in _SETTINGS:
        registry[f"marlin-{setting}"] = _marlin_factory(setting)
    for setting in _SETTINGS:
        registry[f"no-tracking-{setting}"] = _no_tracking_factory(setting)
    registry["continuous-320"] = _continuous_factory("yolov3-320")
    registry["continuous-608"] = _continuous_factory("yolov3-608")
    registry["continuous-tiny-320"] = _continuous_factory("yolov3-tiny-320")
    return registry


_REGISTRY = _build_registry()

# The method names every figure/table bench understands.
METHODS: tuple[str, ...] = tuple(_REGISTRY)


def make_method(name: str, config: PipelineConfig | None = None, **kwargs):
    """Instantiate a method by its registry name.

    ``kwargs`` are forwarded to the method constructor (e.g. a custom
    threshold table for ``adavp`` or a trigger velocity for MARLIN).
    """
    factory = _REGISTRY.get(name)
    if factory is None:
        raise KeyError(f"unknown method {name!r}; known: {', '.join(METHODS)}")
    return factory(name, config or PipelineConfig(), dict(kwargs))


def run_method_on_clip(method, clip: VideoClip) -> PipelineRun:
    """Run a method over one clip (AdaVP exposes ``process``, others ``run``)."""
    runner = getattr(method, "process", None) or method.run
    return runner(clip)


@dataclass
class MethodResult:
    """Aggregated suite-level outcome of one method."""

    method: str
    per_video_accuracy: list[float] = field(default_factory=list)
    per_video_mean_f1: list[float] = field(default_factory=list)
    runs: list[PipelineRun] = field(default_factory=list)
    activity: ActivityLog = field(default_factory=ActivityLog)

    @property
    def accuracy(self) -> float:
        """Suite accuracy: mean per-video %frames-above-alpha (paper §VI-A)."""
        if not self.per_video_accuracy:
            raise ValueError(
                f"method {self.method!r} has no per-video results — "
                "was it run on an empty suite?"
            )
        return float(np.mean(self.per_video_accuracy))

    @property
    def mean_f1(self) -> float:
        if not self.per_video_mean_f1:
            raise ValueError(
                f"method {self.method!r} has no per-video results — "
                "was it run on an empty suite?"
            )
        return float(np.mean(self.per_video_mean_f1))

    def energy(self) -> EnergyBreakdown:
        """Table III-style energy, integrated over the whole suite."""
        return TX2_POWER_MODEL.breakdown(self.activity)


def evaluate_run(
    run: PipelineRun,
    clip: VideoClip,
    alpha: float = 0.7,
    iou_threshold: float = 0.5,
) -> tuple[float, np.ndarray]:
    """(video accuracy, per-frame F1 series) for one run."""
    f1 = frame_f1_series(
        run.detections_per_frame(), clip.scene.annotations(), iou_threshold
    )
    return video_accuracy(f1, alpha), f1


def run_method_on_suite(
    name: str,
    suite: VideoSuite,
    config: PipelineConfig | None = None,
    alpha: float = 0.7,
    iou_threshold: float = 0.5,
    keep_runs: bool = False,
    jobs: int = 1,
    obs=None,
    progress=None,
    **kwargs,
) -> MethodResult:
    """Run a registry method over a suite and aggregate paper-style metrics.

    Delegates to the sweep engine: ``jobs=1`` runs the clips inline in
    suite order (bit-identical to the historical sequential loop, shared
    renderer caches and all); ``jobs>1`` shards the clips over a process
    pool.  A shard that fails both attempts raises ``RuntimeError`` — a
    single-method sweep has no partial-result story to fall back on.
    """
    from repro.parallel import run_sweep

    sweep = run_sweep(
        [name],
        suite,
        config=config,
        alpha=alpha,
        iou_threshold=iou_threshold,
        keep_runs=keep_runs,
        jobs=jobs,
        obs=obs,
        progress=progress,
        method_kwargs={name: kwargs} if kwargs else None,
    )
    sweep.raise_if_failed()
    return sweep.results[name]
