"""Method registry and suite-level evaluation helpers.

A *method* is anything with ``run(clip) -> PipelineRun``; the registry maps
the paper's method names ("adavp", "mpdt-512", "marlin-512",
"no-tracking-608", "continuous-tiny-320", ...) to factories so every bench
builds methods the same way, with the same shared :class:`PipelineConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.continuous import ContinuousDetectionPipeline
from repro.baselines.marlin import MarlinConfig, MarlinPipeline
from repro.baselines.no_tracking import NoTrackingPipeline
from repro.core.adavp import AdaVP
from repro.core.config import PipelineConfig
from repro.core.mpdt import FixedSettingPolicy, MPDTPipeline
from repro.metrics.accuracy import frame_f1_series, video_accuracy
from repro.metrics.energy import ActivityLog, EnergyBreakdown, TX2_POWER_MODEL
from repro.runtime.simulator import PipelineRun
from repro.video.dataset import VideoClip, VideoSuite

# The method names every figure/table bench understands.
METHODS: tuple[str, ...] = (
    "adavp",
    "mpdt-320",
    "mpdt-416",
    "mpdt-512",
    "mpdt-608",
    "marlin-320",
    "marlin-416",
    "marlin-512",
    "marlin-608",
    "no-tracking-320",
    "no-tracking-416",
    "no-tracking-512",
    "no-tracking-608",
    "continuous-320",
    "continuous-608",
    "continuous-tiny-320",
)


def make_method(name: str, config: PipelineConfig | None = None, **kwargs):
    """Instantiate a method by its registry name.

    ``kwargs`` are forwarded to the method constructor (e.g. a custom
    threshold table for ``adavp`` or a trigger velocity for MARLIN).
    """
    config = config or PipelineConfig()
    if name == "adavp":
        return AdaVP(config=config, **kwargs)
    kind, _, size = name.partition("-")
    if kind == "mpdt":
        return MPDTPipeline(
            FixedSettingPolicy(int(size)), config, method_name=name, **kwargs
        )
    if kind == "marlin":
        marlin_cfg = kwargs.pop("marlin", None) or MarlinConfig(setting=int(size))
        return MarlinPipeline(marlin_cfg, config, method_name=name, **kwargs)
    if kind == "no":  # "no-tracking-N"
        size = name.rsplit("-", 1)[1]
        return NoTrackingPipeline(int(size), config, method_name=name, **kwargs)
    if kind == "continuous":
        setting = "yolov3-tiny-320" if "tiny" in name else f"yolov3-{size.rsplit('-', 1)[-1]}"
        return ContinuousDetectionPipeline(setting, config, method_name=name, **kwargs)
    raise KeyError(f"unknown method {name!r}; known: {', '.join(METHODS)}")


def run_method_on_clip(method, clip: VideoClip) -> PipelineRun:
    """Run a method over one clip (AdaVP exposes ``process``, others ``run``)."""
    runner = getattr(method, "process", None) or method.run
    return runner(clip)


@dataclass
class MethodResult:
    """Aggregated suite-level outcome of one method."""

    method: str
    per_video_accuracy: list[float] = field(default_factory=list)
    per_video_mean_f1: list[float] = field(default_factory=list)
    runs: list[PipelineRun] = field(default_factory=list)
    activity: ActivityLog = field(default_factory=ActivityLog)

    @property
    def accuracy(self) -> float:
        """Suite accuracy: mean per-video %frames-above-alpha (paper §VI-A)."""
        return float(np.mean(self.per_video_accuracy))

    @property
    def mean_f1(self) -> float:
        return float(np.mean(self.per_video_mean_f1))

    def energy(self) -> EnergyBreakdown:
        """Table III-style energy, integrated over the whole suite."""
        return TX2_POWER_MODEL.breakdown(self.activity)


def evaluate_run(
    run: PipelineRun,
    clip: VideoClip,
    alpha: float = 0.7,
    iou_threshold: float = 0.5,
) -> tuple[float, np.ndarray]:
    """(video accuracy, per-frame F1 series) for one run."""
    f1 = frame_f1_series(
        run.detections_per_frame(), clip.scene.annotations(), iou_threshold
    )
    return video_accuracy(f1, alpha), f1


def run_method_on_suite(
    name: str,
    suite: VideoSuite,
    config: PipelineConfig | None = None,
    alpha: float = 0.7,
    iou_threshold: float = 0.5,
    keep_runs: bool = False,
    **kwargs,
) -> MethodResult:
    """Run a registry method over a suite and aggregate paper-style metrics."""
    result = MethodResult(method=name)
    for clip in suite:
        method = make_method(name, config, **kwargs)
        run = run_method_on_clip(method, clip)
        accuracy, f1 = evaluate_run(run, clip, alpha, iou_threshold)
        result.per_video_accuracy.append(accuracy)
        result.per_video_mean_f1.append(float(f1.mean()))
        result.activity.merge(run.activity)
        if keep_runs:
            result.runs.append(run)
    return result
