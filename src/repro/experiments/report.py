"""Plain-text report formatting for experiment results.

Every figure/table runner produces rows; these helpers render them in a
fixed-width layout that mirrors the paper's tables and figure series so a
terminal diff against EXPERIMENTS.md is meaningful.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.3f}",
) -> str:
    """Render rows as a fixed-width text table."""
    rendered: list[list[str]] = []
    for row in rows:
        rendered.append(
            [
                float_format.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered)) if rendered else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = [title]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(title: str, xs: Sequence[object], ys: Sequence[float],
                  x_label: str = "x", y_label: str = "y") -> str:
    """Render an (x, y) series, one point per line — a text 'figure'."""
    lines = [title, f"{x_label:>10}  {y_label}"]
    for x, y in zip(xs, ys):
        lines.append(f"{x!s:>10}  {y:.3f}")
    return "\n".join(lines)


def relative_gain(new: float, baseline: float) -> float:
    """Relative improvement of ``new`` over ``baseline`` (paper's % figures)."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return (new - baseline) / baseline
