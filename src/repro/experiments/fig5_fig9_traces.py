"""Fig. 5 and Fig. 9: frame-level accuracy traces.

Fig. 5 contrasts MPDT-YOLOv3-320 with MPDT-YOLOv3-608 frame by frame on
one clip: the small setting calibrates often from a mediocre baseline, the
large one calibrates rarely from a high baseline, and each wins on some
frames.

Fig. 9 contrasts AdaVP with the best fixed baseline (MPDT-512) on a clip
whose dynamics change mid-video: the fixed setting suffers through the
change while AdaVP's adaptation dodges it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.adavp import AdaVP
from repro.core.config import PipelineConfig
from repro.core.mpdt import FixedSettingPolicy, MPDTPipeline
from repro.experiments.report import format_series
from repro.experiments.runners import evaluate_run
from repro.experiments.workloads import make_phase_clip
from repro.video.dataset import VideoClip, make_clip


@dataclass(frozen=True)
class TraceResult:
    title: str
    labels: tuple[str, str]
    series_a: np.ndarray
    series_b: np.ndarray
    accuracy_a: float
    accuracy_b: float

    def report(self, stride: int = 10) -> str:
        frames = list(range(0, len(self.series_a), stride))
        part_a = format_series(
            f"{self.title} — {self.labels[0]} (accuracy {self.accuracy_a:.3f})",
            frames, self.series_a[frames], "frame", "F1",
        )
        part_b = format_series(
            f"{self.title} — {self.labels[1]} (accuracy {self.accuracy_b:.3f})",
            frames, self.series_b[frames], "frame", "F1",
        )
        return f"{part_a}\n\n{part_b}"


def run_fig5(
    clip: VideoClip | None = None, config: PipelineConfig | None = None
) -> TraceResult:
    """MPDT-320 vs MPDT-608 frame accuracy on a medium-speed clip."""
    clip = clip or make_clip("intersection", seed=91, num_frames=240)
    acc = {}
    series = {}
    for size in (320, 608):
        run_ = MPDTPipeline(FixedSettingPolicy(size), config).run(clip)
        acc[size], series[size] = evaluate_run(run_, clip)
    return TraceResult(
        title="Fig. 5 — frame accuracy under two fixed settings",
        labels=("MPDT-YOLOv3-320", "MPDT-YOLOv3-608"),
        series_a=series[320],
        series_b=series[608],
        accuracy_a=acc[320],
        accuracy_b=acc[608],
    )


def run_fig9(
    clip: VideoClip | None = None, config: PipelineConfig | None = None
) -> TraceResult:
    """AdaVP vs MPDT-512 frame accuracy on a clip with changing dynamics."""
    clip = clip or make_phase_clip("city_street", seed=92, num_frames=300,
                                   calm_until=0.5, speed_scale=2.6)
    adavp_run = AdaVP(config=config).process(clip)
    adavp_acc, adavp_series = evaluate_run(adavp_run, clip)
    mpdt_run = MPDTPipeline(FixedSettingPolicy(512), config).run(clip)
    mpdt_acc, mpdt_series = evaluate_run(mpdt_run, clip)
    return TraceResult(
        title="Fig. 9 — AdaVP vs the best fixed baseline",
        labels=("AdaVP", "MPDT-YOLOv3-512"),
        series_a=adavp_series,
        series_b=mpdt_series,
        accuracy_a=adavp_acc,
        accuracy_b=mpdt_acc,
    )


if __name__ == "__main__":
    print(run_fig5().report())
    print()
    print(run_fig9().report())
