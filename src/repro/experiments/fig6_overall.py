"""Fig. 6: overall accuracy of AdaVP vs every baseline.

Thirteen bars: AdaVP, MPDT x 4 settings, MARLIN x 4, without-tracking x 4
— suite accuracy (% frames with F1 > 0.7, averaged per video) on the
evaluation corpus.

Shape targets from the paper: AdaVP on top; 512 the best fixed setting;
MPDT > MARLIN and > no-tracking at every setting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import PipelineConfig
from repro.experiments.report import format_table, relative_gain
from repro.experiments.runners import MethodResult
from repro.experiments.workloads import evaluation_suite
from repro.parallel import ProgressCallback, run_sweep
from repro.video.dataset import VideoSuite

FIG6_METHODS: tuple[str, ...] = (
    "adavp",
    "mpdt-320",
    "mpdt-416",
    "mpdt-512",
    "mpdt-608",
    "marlin-320",
    "marlin-416",
    "marlin-512",
    "marlin-608",
    "no-tracking-320",
    "no-tracking-416",
    "no-tracking-512",
    "no-tracking-608",
)


@dataclass(frozen=True)
class Fig6Result:
    results: dict[str, MethodResult]
    alpha: float
    iou_threshold: float

    def accuracy(self, method: str) -> float:
        return self.results[method].accuracy

    def best_fixed_mpdt(self) -> str:
        return max(
            (m for m in self.results if m.startswith("mpdt")), key=self.accuracy
        )

    def _gain_range(
        self, numerator: str, denominator: str
    ) -> tuple[float, float] | None:
        """(min, max) gain of ``numerator`` over ``denominator`` settings.

        Method name templates contain ``{s}`` for the setting; only the
        settings present in this result contribute (benches may run a
        subset of the 13 methods).
        """
        gains = []
        for size in (320, 416, 512, 608):
            top = numerator.format(s=size)
            bottom = denominator.format(s=size)
            if top in self.results and bottom in self.results:
                gains.append(
                    relative_gain(self.accuracy(top), self.accuracy(bottom))
                )
        if not gains:
            return None
        return min(gains), max(gains)

    def adavp_gain_over_mpdt(self) -> tuple[float, float] | None:
        """(min, max) relative gain of AdaVP over the available MPDT settings."""
        return self._gain_range("adavp", "mpdt-{s}")

    def adavp_gain_over_marlin(self) -> tuple[float, float] | None:
        return self._gain_range("adavp", "marlin-{s}")

    def mpdt_gain_over_marlin(self) -> tuple[float, float] | None:
        return self._gain_range("mpdt-{s}", "marlin-{s}")

    def mpdt_gain_over_no_tracking(self) -> tuple[float, float] | None:
        return self._gain_range("mpdt-{s}", "no-tracking-{s}")

    def report(self) -> str:
        rows = [
            (method, self.results[method].accuracy, self.results[method].mean_f1)
            for method in FIG6_METHODS
            if method in self.results
        ]
        table = format_table(
            f"Fig. 6 — overall accuracy (alpha={self.alpha}, IoU={self.iou_threshold})",
            ("method", "accuracy", "mean_F1"),
            rows,
        )
        lines = [table]
        comparisons = (
            ("AdaVP vs MPDT", self.adavp_gain_over_mpdt(), "+13.4% .. +34.1%"),
            ("AdaVP vs MARLIN", self.adavp_gain_over_marlin(), "+20.4% .. +43.9%"),
            ("MPDT vs MARLIN", self.mpdt_gain_over_marlin(), "+7.1% .. +21.95%"),
            ("MPDT vs no-tracking", self.mpdt_gain_over_no_tracking(), "+2.3% .. +37.3%"),
        )
        for label, gains, paper in comparisons:
            if gains is not None:
                lines.append(
                    f"{label + ':':22s}+{gains[0]:.1%} .. +{gains[1]:.1%} (paper: {paper})"
                )
        mpdt_present = [m for m in self.results if m.startswith("mpdt")]
        if mpdt_present:
            lines.append(
                f"best fixed MPDT setting: {self.best_fixed_mpdt()} (paper: yolov3-512)"
            )
        return "\n".join(lines)


def run(
    suite: VideoSuite | None = None,
    methods: tuple[str, ...] = FIG6_METHODS,
    alpha: float = 0.7,
    iou_threshold: float = 0.5,
    config: PipelineConfig | None = None,
    jobs: int = 1,
    progress: ProgressCallback | None = None,
) -> Fig6Result:
    suite = suite or evaluation_suite()
    sweep = run_sweep(
        methods,
        suite,
        config=config,
        alpha=alpha,
        iou_threshold=iou_threshold,
        jobs=jobs,
        progress=progress,
    )
    sweep.raise_if_failed()
    return Fig6Result(
        results=sweep.results, alpha=alpha, iou_threshold=iou_threshold
    )


if __name__ == "__main__":
    print(run().report())
