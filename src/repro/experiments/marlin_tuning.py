"""Offline tuning of MARLIN's scene-change trigger (paper §VI-A).

"For video content change detector, we conduct a set of experiments to
find a motion velocity threshold that provides the best detection accuracy
for MARLIN."  This module performs that sweep so the Fig. 6 / Table III
comparisons give MARLIN its best configuration, as the paper did.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.marlin import MarlinConfig
from repro.core.config import PipelineConfig
from repro.experiments.report import format_table
from repro.experiments.runners import run_method_on_suite
from repro.experiments.workloads import training_suite
from repro.video.dataset import VideoSuite

DEFAULT_CANDIDATES: tuple[float, ...] = (0.3, 0.45, 0.6, 1.0, 1.5, 2.2)


@dataclass(frozen=True)
class MarlinTuningResult:
    setting: int
    accuracies: dict[float, float]

    @property
    def best_threshold(self) -> float:
        return max(self.accuracies, key=self.accuracies.get)

    def report(self) -> str:
        table = format_table(
            f"MARLIN trigger-velocity sweep (setting {self.setting})",
            ("trigger_velocity", "accuracy"),
            sorted(self.accuracies.items()),
        )
        return f"{table}\nbest: {self.best_threshold}"


def run(
    setting: int = 512,
    candidates: tuple[float, ...] = DEFAULT_CANDIDATES,
    suite: VideoSuite | None = None,
    config: PipelineConfig | None = None,
    jobs: int = 1,
) -> MarlinTuningResult:
    """Sweep the trigger threshold on (a subset of) the training corpus.

    Candidates reuse one method name with different kwargs, so each
    threshold is its own suite sweep; ``jobs`` parallelises over clips
    within a threshold.
    """
    suite = suite or VideoSuite(
        name="marlin-tuning", clips=training_suite().clips[:8]
    )
    accuracies = {}
    for threshold in candidates:
        marlin = MarlinConfig(setting=setting, trigger_velocity=threshold)
        result = run_method_on_suite(
            f"marlin-{setting}", suite, config, marlin=marlin, jobs=jobs
        )
        accuracies[threshold] = result.accuracy
    return MarlinTuningResult(setting=setting, accuracies=accuracies)


if __name__ == "__main__":
    print(run().report())
