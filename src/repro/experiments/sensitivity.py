"""Sensitivity studies beyond the paper's tables.

The paper's introduction targets "30 or 60 FPS" cameras but evaluates at
30.  :func:`run_fps_sweep` measures how the methods behave at 60 FPS:
detection latency is unchanged, so twice as many frames accumulate per
cycle and the tracker must skip more aggressively — smaller settings gain
relative value.

:func:`run_resolution_sweep` checks that the substrate's conclusions are
not an artifact of the default 320x180 render size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.report import format_table
from repro.experiments.runners import evaluate_run, make_method, run_method_on_clip
from repro.video.dataset import make_clip


@dataclass(frozen=True)
class SweepResult:
    title: str
    rows: list[tuple]  # (condition, method, accuracy, cycles)

    def report(self) -> str:
        return format_table(
            self.title, ("condition", "method", "accuracy", "cycles"), self.rows
        )

    def accuracy(self, condition, method) -> float:
        for row in self.rows:
            if row[0] == condition and row[1] == method:
                return row[2]
        raise KeyError((condition, method))

    def cycles(self, condition, method) -> int:
        for row in self.rows:
            if row[0] == condition and row[1] == method:
                return row[3]
        raise KeyError((condition, method))


def run_fps_sweep(
    scenario: str = "intersection",
    seed: int = 1201,
    seconds: float = 8.0,
    methods: tuple[str, ...] = ("adavp", "mpdt-512"),
    fps_values: tuple[float, ...] = (30.0, 60.0),
) -> SweepResult:
    """The same *physical* content captured at different camera rates.

    Scenario speeds are defined in pixels per frame at 30 fps; a 60 fps
    camera sees the same physical motion as half the per-frame speed, so
    the spawn specs are rescaled by ``30 / fps`` before building the clip.
    """
    from dataclasses import replace

    from repro.video.library import make_scenario

    rows = []
    for fps in fps_values:
        scale = 30.0 / fps
        config = make_scenario(scenario, num_frames=int(seconds * fps), fps=fps)
        config = replace(
            config,
            spawns=tuple(
                replace(
                    spec,
                    speed_min=spec.speed_min * scale,
                    speed_max=spec.speed_max * scale,
                    arrival_rate=spec.arrival_rate * scale,
                )
                for spec in config.spawns
            ),
        )
        clip = make_clip(config, seed=seed)
        for name in methods:
            run = run_method_on_clip(make_method(name), clip)
            accuracy, _ = evaluate_run(run, clip)
            rows.append((f"{fps:g}fps", name, accuracy, len(run.cycles)))
    return SweepResult(
        title=f"FPS sensitivity on {scenario} ({seconds:g}s of content)",
        rows=rows,
    )


def run_resolution_sweep(
    scenario: str = "intersection",
    seed: int = 1301,
    num_frames: int = 240,
    methods: tuple[str, ...] = ("mpdt-512",),
    scales: tuple[float, ...] = (1.0, 1.5),
) -> SweepResult:
    """Same scenario rendered at different frame sizes.

    Object sizes and speeds are specified in pixels of the default
    320x180 canvas, so scaling the canvas without scaling content would
    change the workload; instead we scale the canvas and rely on the
    scenario's own absolute units — the point is that orderings, not
    values, survive.
    """
    rows = []
    for scale in scales:
        width = int(320 * scale)
        height = int(180 * scale)
        clip = make_clip(
            scenario, seed=seed, num_frames=num_frames,
            frame_width=width, frame_height=height,
        )
        for name in methods:
            run = run_method_on_clip(make_method(name), clip)
            accuracy, _ = evaluate_run(run, clip)
            rows.append((f"{width}x{height}", name, accuracy, len(run.cycles)))
    return SweepResult(
        title=f"Render-resolution sensitivity on {scenario}", rows=rows
    )


if __name__ == "__main__":
    print(run_fps_sweep().report())
    print()
    print(run_resolution_sweep().report())
