"""Standard video suites for training and evaluation.

The paper trains its adaptation module on 105 205 frames across 32 videos
(14 scenario families) and evaluates on 141 213 frames across 13 videos.
A CPU-only reproduction scales that down while keeping the *composition*:
the corpus is traffic-heavy (surveillance, intersections, car-mounted) with
a tail of slower content (meeting room, boats, airplanes), and the
evaluation suite includes clips whose dynamics change mid-video — the
situation where runtime adaptation beats every fixed setting.

Suites are deterministic in their seed; experiments should use the default
seeds so results are comparable across runs and machines.
"""

from __future__ import annotations

from dataclasses import replace

from repro.video.dataset import VideoClip, VideoSuite, make_clip
from repro.video.library import make_scenario
from repro.video.scenario import ScenarioPhase

# Default clip lengths (frames @30fps).  Override with the ``frames``
# argument for faster tests or longer, more stable benchmarks.
_TRAIN_FRAMES = 240
_EVAL_FRAMES = 300


def make_phase_clip(
    base: str,
    seed: int,
    num_frames: int,
    calm_until: float = 0.5,
    speed_scale: float = 2.0,
    rate_scale: float = 1.5,
    name: str | None = None,
) -> VideoClip:
    """A clip that switches from calm to busy partway through.

    ``calm_until`` is the fraction of the clip before the speed-up.  Both
    the training corpus and the evaluation corpus include such clips; the
    paper's Fig. 9 trace (AdaVP dodging a content change that hurts
    MPDT-512) needs them.
    """
    if not 0.0 < calm_until < 1.0:
        raise ValueError("calm_until must be in (0, 1)")
    return make_multiphase_clip(
        base,
        seed,
        num_frames,
        [(0.0, 1.0, 1.0), (calm_until, speed_scale, rate_scale)],
        name=name,
    )


def make_multiphase_clip(
    base: str,
    seed: int,
    num_frames: int,
    phases: list[tuple[float, float, float]],
    name: str | None = None,
) -> VideoClip:
    """A clip with several dynamics phases.

    ``phases`` lists ``(start_fraction, speed_scale, rate_scale)`` in
    ascending order of start fraction.  The paper's videos run 15 s to 34
    minutes and move between calm and busy stretches; multi-phase clips are
    the scaled-down equivalent, and they are where runtime adaptation earns
    its keep.
    """
    if not phases:
        raise ValueError("need at least one phase")
    config = make_scenario(base, num_frames=num_frames)
    config = replace(
        config,
        name=f"{base}_phased",
        phases=tuple(
            ScenarioPhase(
                start_frame=int(num_frames * frac),
                speed_scale=speed,
                rate_scale=rate,
            )
            for frac, speed, rate in phases
        ),
    )
    return make_clip(config, seed=seed, name=name or f"{base}_phased-{seed}")


def training_suite(seed: int = 101, frames: int = _TRAIN_FRAMES) -> VideoSuite:
    """The threshold-training corpus: all 14 scenario families + phase clips."""
    scenario_seeds = [
        ("highway_surveillance", 0),
        ("intersection", 1),
        ("city_street", 2),
        ("train_station", 3),
        ("bus_station", 4),
        ("residential", 5),
        ("car_highway", 6),
        ("car_downtown", 7),
        ("airplanes", 8),
        ("boat", 9),
        ("wildlife", 10),
        ("racetrack", 11),
        ("meeting_room", 12),
        ("skating_rink", 13),
    ]
    clips = [
        make_clip(name, seed=seed + offset, num_frames=frames)
        for name, offset in scenario_seeds
    ]
    clips.append(make_phase_clip("intersection", seed + 50, frames, speed_scale=2.2))
    clips.append(make_phase_clip("city_street", seed + 51, frames, speed_scale=2.5))
    return VideoSuite(name=f"training-{seed}", clips=clips)


def evaluation_suite(seed: int = 202, frames: int = _EVAL_FRAMES) -> VideoSuite:
    """The evaluation corpus (18 clips, traffic-heavy like the paper's).

    Seeds are disjoint from :func:`training_suite` defaults so evaluation
    never sees training clips.  Five clips carry multi-phase dynamics —
    the paper's videos run up to 34 minutes and wander between calm and
    busy stretches, which the short synthetic clips emulate with phases.
    """
    scenario_seeds = [
        ("highway_surveillance", 0),
        ("intersection", 1),
        ("city_street", 2),
        ("car_highway", 3),
        ("car_downtown", 4),
        ("racetrack", 5),
        ("residential", 6),
        ("wildlife", 7),
        ("skating_rink", 8),
        ("meeting_room", 9),
        ("boat", 10),
        ("airplanes", 11),
        ("train_station", 12),
    ]
    clips = [
        make_clip(name, seed=seed + offset, num_frames=frames)
        for name, offset in scenario_seeds
    ]
    clips.append(
        make_phase_clip("intersection", seed + 60, frames, speed_scale=2.2)
    )
    clips.append(
        make_phase_clip("highway_surveillance", seed + 61, frames, calm_until=0.4,
                        speed_scale=0.45, rate_scale=0.7)
    )
    clips.append(
        make_multiphase_clip(
            "city_street", seed + 62, frames,
            [(0.0, 0.5, 0.8), (0.35, 2.4, 1.4), (0.7, 0.5, 0.8)],
        )
    )
    clips.append(
        make_multiphase_clip(
            "residential", seed + 63, frames,
            [(0.0, 1.0, 1.0), (0.5, 3.0, 2.0)],
        )
    )
    clips.append(
        make_multiphase_clip(
            "boat", seed + 64, frames,
            [(0.0, 3.5, 2.5), (0.5, 1.0, 1.0)],
        )
    )
    return VideoSuite(name=f"evaluation-{seed}", clips=clips)


def quick_suite(seed: int = 303, frames: int = 120) -> VideoSuite:
    """A tiny three-clip suite for unit/integration tests."""
    return VideoSuite(
        name=f"quick-{seed}",
        clips=[
            make_clip("highway_surveillance", seed=seed, num_frames=frames),
            make_clip("residential", seed=seed + 1, num_frames=frames),
            make_clip("meeting_room", seed=seed + 2, num_frames=frames),
        ],
    )
