"""Fig. 10 and Fig. 11: sensitivity to the F1 and IoU thresholds.

Fig. 10 re-evaluates AdaVP and the fixed-MPDT baselines with a stricter
accuracy threshold (alpha = 0.75 instead of 0.7); Fig. 11 with a stricter
IoU (0.6 instead of 0.5).  In the paper, AdaVP's advantage *grows* under
both stricter settings — it has more high-quality frames than the
baselines, not just more borderline ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import PipelineConfig
from repro.experiments.report import format_table, relative_gain
from repro.experiments.runners import evaluate_run
from repro.experiments.workloads import evaluation_suite
from repro.parallel import run_sweep
from repro.video.dataset import VideoSuite

_METHODS = ("adavp", "mpdt-320", "mpdt-416", "mpdt-512", "mpdt-608")


@dataclass(frozen=True)
class ThresholdSweepResult:
    """Accuracy of each method under two (alpha, IoU) settings."""

    title: str
    parameter: str
    default_value: float
    strict_value: float
    default_accuracy: dict[str, float]
    strict_accuracy: dict[str, float]

    def gain_range(self, table: dict[str, float]) -> tuple[float, float]:
        gains = [
            relative_gain(table["adavp"], table[m]) for m in _METHODS if m != "adavp"
        ]
        return min(gains), max(gains)

    def report(self) -> str:
        rows = [
            (m, self.default_accuracy[m], self.strict_accuracy[m]) for m in _METHODS
        ]
        table = format_table(
            self.title,
            ("method", f"{self.parameter}={self.default_value}",
             f"{self.parameter}={self.strict_value}"),
            rows,
        )
        lo_d, hi_d = self.gain_range(self.default_accuracy)
        lo_s, hi_s = self.gain_range(self.strict_accuracy)
        return "\n".join(
            [
                table,
                f"AdaVP gain over MPDT at {self.parameter}={self.default_value}: "
                f"+{lo_d:.1%} .. +{hi_d:.1%}",
                f"AdaVP gain over MPDT at {self.parameter}={self.strict_value}: "
                f"+{lo_s:.1%} .. +{hi_s:.1%}",
            ]
        )


def run_fig10(
    suite: VideoSuite | None = None,
    config: PipelineConfig | None = None,
    strict_alpha: float = 0.75,
    jobs: int = 1,
) -> ThresholdSweepResult:
    suite = suite or evaluation_suite()
    sweep = run_sweep(_METHODS, suite, config=config, keep_runs=True, jobs=jobs)
    sweep.raise_if_failed()
    default, strict = {}, {}
    for method in _METHODS:
        result = sweep.results[method]
        default[method] = result.accuracy
        # Re-score the same runs at the stricter alpha (no re-simulation).
        strict[method] = float(
            sum(
                evaluate_run(run_, clip, alpha=strict_alpha)[0]
                for run_, clip in zip(result.runs, suite)
            )
            / len(suite)
        )
    return ThresholdSweepResult(
        title="Fig. 10 — accuracy under F1 thresholds",
        parameter="alpha",
        default_value=0.7,
        strict_value=strict_alpha,
        default_accuracy=default,
        strict_accuracy=strict,
    )


def run_fig11(
    suite: VideoSuite | None = None,
    config: PipelineConfig | None = None,
    strict_iou: float = 0.6,
    jobs: int = 1,
) -> ThresholdSweepResult:
    suite = suite or evaluation_suite()
    sweep = run_sweep(_METHODS, suite, config=config, keep_runs=True, jobs=jobs)
    sweep.raise_if_failed()
    default, strict = {}, {}
    for method in _METHODS:
        result = sweep.results[method]
        default[method] = result.accuracy
        strict[method] = float(
            sum(
                evaluate_run(run_, clip, iou_threshold=strict_iou)[0]
                for run_, clip in zip(result.runs, suite)
            )
            / len(suite)
        )
    return ThresholdSweepResult(
        title="Fig. 11 — accuracy under IoU thresholds",
        parameter="IoU",
        default_value=0.5,
        strict_value=strict_iou,
        default_accuracy=default,
        strict_accuracy=strict,
    )


if __name__ == "__main__":
    print(run_fig10().report())
    print()
    print(run_fig11().report())
