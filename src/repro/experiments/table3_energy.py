"""Table III: energy consumption and accuracy of eight methods.

Columns match the paper: AdaVP, MPDT/MARLIN at 320 and 512, continuous
YOLOv3-tiny-320, continuous YOLOv3-320, and continuous YOLOv3-608.  For the
continuous methods the run is not real-time; the latency multiplier (the
paper's "7x latency") is reported alongside.

Shape targets: AdaVP spends slightly more than MARLIN-512 but is much more
accurate; per-frame YOLO burns an order of magnitude more energy; tiny is
cheap per frame but inaccurate and still above real time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import PipelineConfig
from repro.experiments.report import format_table
from repro.experiments.runners import MethodResult
from repro.experiments.workloads import evaluation_suite
from repro.metrics.energy import EnergyBreakdown
from repro.parallel import run_sweep
from repro.video.dataset import VideoSuite

TABLE3_METHODS: tuple[str, ...] = (
    "adavp",
    "mpdt-320",
    "marlin-320",
    "continuous-tiny-320",
    "continuous-320",
    "mpdt-512",
    "marlin-512",
    "continuous-608",
)


@dataclass(frozen=True)
class Table3Column:
    method: str
    energy: EnergyBreakdown
    accuracy: float
    latency_multiplier: float


@dataclass(frozen=True)
class Table3Result:
    columns: dict[str, Table3Column]
    video_hours: float

    def report(self) -> str:
        rows = []
        for rail in ("GPU", "CPU", "SoC", "DDR", "Total"):
            rows.append(
                [rail]
                + [
                    self.columns[m].energy.as_dict()[rail]
                    for m in TABLE3_METHODS
                ]
            )
        rows.append(
            ["Accuracy"] + [self.columns[m].accuracy for m in TABLE3_METHODS]
        )
        rows.append(
            ["Latency x"]
            + [self.columns[m].latency_multiplier for m in TABLE3_METHODS]
        )
        return format_table(
            f"Table III — energy (Wh over {self.video_hours:.2f} h of video) and accuracy",
            ["rail"] + list(TABLE3_METHODS),
            rows,
        )


def _column(name: str, result: MethodResult, video_seconds: float) -> Table3Column:
    return Table3Column(
        method=name,
        energy=result.energy(),
        accuracy=result.accuracy,
        latency_multiplier=result.activity.duration / video_seconds,
    )


def run(
    suite: VideoSuite | None = None,
    config: PipelineConfig | None = None,
    methods: tuple[str, ...] = TABLE3_METHODS,
    jobs: int = 1,
) -> Table3Result:
    suite = suite or evaluation_suite()
    video_seconds = sum(clip.num_frames / clip.fps for clip in suite)
    sweep = run_sweep(methods, suite, config=config, jobs=jobs)
    sweep.raise_if_failed()
    columns = {
        name: _column(name, sweep.results[name], video_seconds) for name in methods
    }
    return Table3Result(columns=columns, video_hours=video_seconds / 3600.0)


if __name__ == "__main__":
    print(run().report())
