"""Bench: regenerate Table II (component latencies)."""

from conftest import run_once

from repro.experiments import table2_latency


def test_table2_latency(benchmark):
    result = run_once(benchmark, lambda: table2_latency.run(num_frames=240))
    print()
    print(result.report())

    rows = {r.component: r.time_ms for r in result.rows}
    # Paper Table II rows.
    assert rows["Good feature extraction"] == "40"
    assert rows["Overlay latency"] == "50"
    low, high = rows["YOLOv3 detection latency"].split("-")
    assert 200 <= int(low) <= 260
    assert 450 <= int(high) <= 560
    track_low, track_high = rows["Tracking latency"].split("-")
    assert 5 <= int(track_low) <= 9
    assert 15 <= int(track_high) <= 25
    # The observed in-pipeline detection latencies bracket the model's span.
    observed_low, observed_high = result.observed_detection_ms
    assert observed_low < 300
    assert observed_high > 420
