"""Bench: regenerate Fig. 1 (detection latency & accuracy per frame size)."""

from conftest import run_once

from repro.experiments import fig1_detector_profile


def test_fig1_detector_profile(benchmark):
    result = run_once(benchmark, lambda: fig1_detector_profile.run(num_frames=2000))
    print()
    print(result.report())

    latencies = [r.mean_latency_ms for r in result.rows]
    f1s = [r.mean_f1 for r in result.rows]
    # Paper: latency 230 -> 500 ms and F1 0.62 -> 0.88 as size 320 -> 608.
    assert 210 < latencies[0] < 260
    assert 460 < latencies[-1] < 560
    assert latencies == sorted(latencies)
    assert f1s == sorted(f1s)
    assert abs(f1s[0] - 0.62) < 0.09
    assert abs(f1s[-1] - 0.88) < 0.06
