"""Bench: 60 FPS sensitivity (the paper's intro targets "30 or 60 FPS")."""

from conftest import run_once

from repro.experiments.sensitivity import run_fps_sweep


def test_sensitivity_fps(benchmark):
    result = run_once(
        benchmark,
        lambda: run_fps_sweep(seconds=8.0, methods=("adavp", "mpdt-512")),
    )
    print()
    print(result.report())

    # The pipeline keeps working at 60 fps: detection latency is unchanged,
    # so roughly the same cycle count covers the same content duration...
    assert abs(
        result.cycles("60fps", "mpdt-512") - result.cycles("30fps", "mpdt-512")
    ) <= 2
    # ...and accuracy does not collapse (more frames per cycle are held, but
    # each held frame is half as stale in wall-clock terms).
    assert result.accuracy("60fps", "mpdt-512") > 0.5 * result.accuracy(
        "30fps", "mpdt-512"
    )
