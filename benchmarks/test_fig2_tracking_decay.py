"""Bench: regenerate Fig. 2 (tracking decay, fast vs slow video)."""

from conftest import run_once

from repro.experiments import fig2_tracking_decay


def test_fig2_tracking_decay(benchmark):
    result = run_once(
        benchmark, lambda: fig2_tracking_decay.run(horizon=35, repeats=10)
    )
    print()
    print(result.report())

    # Both videos start from a high (YOLOv3-608-seeded) accuracy...
    assert result.fast_series[0] > 0.8
    assert result.slow_series[0] > 0.8
    # ...the fast video decays sharply (paper: below 0.5 after 9 frames;
    # our synthetic world crosses within ~2x of that)...
    assert result.fast_crossing is not None and result.fast_crossing <= 22
    # ...while the slow video holds (paper: 27 frames; ours stays above 0.5
    # for at least that long).
    assert result.slow_crossing is None or result.slow_crossing > 26
    # And at every horizon the fast video is no better than the slow one
    # once decay sets in.
    assert result.fast_series[10:].mean() < result.slow_series[10:].mean()
