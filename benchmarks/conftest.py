"""Shared benchmark fixtures.

The figure/table benches share one evaluation suite and a lazy cache of
method results so the 13-method Fig. 6 sweep is computed once and re-scored
by the threshold-sensitivity benches.

Scale control: ``REPRO_BENCH_FRAMES`` (default 300 = 10 s clips) sets the
per-clip length.  The paper's corpus is ~141 k evaluation frames; the
default bench scale is ~4.8 k frames, which preserves every qualitative
shape at a few minutes of CPU time.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.runners import MethodResult, run_method_on_suite
from repro.experiments.workloads import evaluation_suite

BENCH_FRAMES = int(os.environ.get("REPRO_BENCH_FRAMES", "300"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "202"))


@pytest.fixture(scope="session")
def eval_suite():
    return evaluation_suite(seed=BENCH_SEED, frames=BENCH_FRAMES)


class MethodResultCache:
    """Lazily computes and memoises suite-level method results."""

    def __init__(self, suite) -> None:
        self.suite = suite
        self._results: dict[str, MethodResult] = {}

    def get(self, method: str, **kwargs) -> MethodResult:
        if method not in self._results:
            self._results[method] = run_method_on_suite(
                method, self.suite, keep_runs=True, **kwargs
            )
        return self._results[method]


@pytest.fixture(scope="session")
def method_cache(eval_suite):
    return MethodResultCache(eval_suite)


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing.

    The experiments are deterministic and expensive; repeated rounds would
    only re-measure identical work.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)
