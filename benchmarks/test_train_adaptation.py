"""Bench: the adaptation-threshold training procedure (paper §IV-D3).

Runs the trainer on a reduced corpus and checks the learned thresholds
have the right structure (ordered, in a plausible velocity range, and
broadly consistent with the shipped pretrained table's v1 band).
"""

from conftest import run_once

from repro.core.adaptation import collect_training_data, train_threshold_table
from repro.core.pretrained import DEFAULT_THRESHOLD_TABLE
from repro.experiments.workloads import training_suite


def test_train_adaptation(benchmark):
    suite = training_suite(seed=101, frames=150)

    def compute():
        records = collect_training_data(suite.clips)
        return records, train_threshold_table(records)

    records, table = run_once(benchmark, compute)
    print()
    print(f"trained on {len(records)} chunk records from {len(suite)} clips")
    for name in ("yolov3-608", "yolov3-512", "yolov3-416", "yolov3-320"):
        th = table[name]
        print(f"{name}: v1={th.v1:.3f} v2={th.v2:.3f} v3={th.v3:.3f}")

    for name, thresholds in table.items():
        assert 0.0 <= thresholds.v1 <= thresholds.v2 <= thresholds.v3
        # Velocities on this corpus live in roughly [0, 6] px/frame.
        assert thresholds.v3 < 8.0
    # The 608-vs-512 boundary lands in the same band as the shipped table
    # (sub-pixel-per-frame content is "slow").
    shipped_v1 = DEFAULT_THRESHOLD_TABLE["yolov3-512"].v1
    assert abs(table["yolov3-512"].v1 - shipped_v1) < 1.0
