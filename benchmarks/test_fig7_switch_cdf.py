"""Bench: regenerate Fig. 7 (CDF of cycles per model-setting switch)."""

from conftest import run_once

from repro.experiments.fig7_fig8_adaptation import AdaptationBehaviour


def _collect(method_cache) -> AdaptationBehaviour:
    result = method_cache.get("adavp")
    gaps: list[int] = []
    usage: dict[str, int] = {}
    for run in result.runs:
        gaps.extend(run.cycles_between_switches())
        for name, count in run.profile_usage().items():
            usage[name] = usage.get(name, 0) + count
    return AdaptationBehaviour(switch_gaps=tuple(gaps), usage=usage)


def test_fig7_switch_cdf(benchmark, method_cache):
    behaviour = run_once(benchmark, lambda: _collect(method_cache))
    print()
    print(behaviour.report())

    cdf = dict(behaviour.cdf())
    assert behaviour.switch_gaps, "AdaVP never switched settings"
    # Paper: ~50 % of switches happen after a single cycle...
    assert cdf[1] > 0.25
    # ...and ~90 % within 20 cycles.
    assert cdf[20] > 0.8
    # CDF is monotone and bounded.
    values = [cdf[k] for k in sorted(cdf)]
    assert values == sorted(values)
    assert values[-1] <= 1.0
