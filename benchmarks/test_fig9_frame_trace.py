"""Bench: regenerate Fig. 9 (AdaVP vs MPDT-512 frame trace on changing content)."""

import numpy as np
from conftest import run_once

from repro.experiments import fig5_fig9_traces


def test_fig9_frame_trace(benchmark):
    trace = run_once(benchmark, lambda: fig5_fig9_traces.run_fig9())
    print()
    print(trace.report(stride=20))

    adavp = np.asarray(trace.series_a)
    mpdt = np.asarray(trace.series_b)
    assert len(adavp) == len(mpdt)
    # Over the long run AdaVP's accuracy is at least competitive with the
    # best fixed baseline on this changing clip (paper: clearly higher).
    assert trace.accuracy_a >= trace.accuracy_b - 0.05
    # Both series are valid F1 traces.
    for series in (adavp, mpdt):
        assert series.min() >= 0.0
        assert series.max() <= 1.0
