"""Ablation: per-object motion vectors vs one global vector.

The paper §IV-C: "instead of calculating an average moving vector of all
objects, we calculate the moving vector for each object."  On scenes with
opposing motion (two-way traffic) a single global vector tracks nothing
well.
"""

from dataclasses import replace

from conftest import run_once

from repro.core.config import PipelineConfig
from repro.experiments.runners import run_method_on_suite
from repro.experiments.workloads import quick_suite
from repro.tracking.tracker import TrackerConfig


def test_ablation_per_object_motion(benchmark):
    # Two-way highway traffic is the adversarial case for a global vector.
    suite = quick_suite(seed=616, frames=240)

    def compute():
        per_object = run_method_on_suite("mpdt-512", suite)
        config = PipelineConfig(
            tracker=replace(TrackerConfig(), per_object_motion=False)
        )
        global_vector = run_method_on_suite("mpdt-512", suite, config)
        return per_object, global_vector

    per_object, global_vector = run_once(benchmark, compute)
    print()
    print(f"per-object motion: acc={per_object.accuracy:.3f}")
    print(f"global motion:     acc={global_vector.accuracy:.3f}")

    assert per_object.accuracy > global_vector.accuracy
