"""Ablation: per-frame-size velocity thresholds vs one shared triple.

The paper learns a separate (v1, v2, v3) per current frame size because
velocity measurements differ slightly by the boxes/features each setting
produces (§IV-D3).  This bench compares the shipped per-size table against
collapsing every setting to the 512 table's triple.
"""

from conftest import run_once

from repro.core.pretrained import DEFAULT_THRESHOLD_TABLE
from repro.experiments.runners import run_method_on_suite
from repro.experiments.workloads import quick_suite


def test_ablation_shared_thresholds(benchmark):
    suite = quick_suite(seed=717, frames=240)

    def compute():
        per_size = run_method_on_suite("adavp", suite)
        shared_triple = DEFAULT_THRESHOLD_TABLE["yolov3-512"]
        shared_table = {name: shared_triple for name in DEFAULT_THRESHOLD_TABLE}
        shared = run_method_on_suite("adavp", suite, thresholds=shared_table)
        return per_size, shared

    per_size, shared = run_once(benchmark, compute)
    print()
    print(f"per-size thresholds: acc={per_size.accuracy:.3f}")
    print(f"shared thresholds:   acc={shared.accuracy:.3f}")

    # The shipped per-size tables are close to each other, so the effect is
    # small — but the per-size variant must not be worse by a real margin.
    assert per_size.accuracy >= shared.accuracy - 0.03
