"""Bench: regenerate Fig. 8 (usage share per DNN model setting)."""

from conftest import run_once

from repro.experiments.fig7_fig8_adaptation import AdaptationBehaviour


def _collect(method_cache) -> AdaptationBehaviour:
    result = method_cache.get("adavp")
    usage: dict[str, int] = {}
    gaps: list[int] = []
    for run in result.runs:
        gaps.extend(run.cycles_between_switches())
        for name, count in run.profile_usage().items():
            usage[name] = usage.get(name, 0) + count
    return AdaptationBehaviour(switch_gaps=tuple(gaps), usage=usage)


def test_fig8_setting_usage(benchmark, method_cache):
    behaviour = run_once(benchmark, lambda: _collect(method_cache))
    print()
    print(behaviour.report())

    fractions = behaviour.usage_fractions()
    assert abs(sum(fractions.values()) - 1.0) < 1e-9
    # Paper: the 512 and 608 settings dominate usage...
    big = fractions.get("yolov3-512", 0.0) + fractions.get("yolov3-608", 0.0)
    assert big > 0.5
    # ...and every setting the adaptation ever chose is a real setting.
    valid = {"yolov3-320", "yolov3-416", "yolov3-512", "yolov3-608"}
    assert set(fractions) <= valid
