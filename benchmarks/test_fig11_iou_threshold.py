"""Bench: regenerate Fig. 11 (accuracy under IoU thresholds 0.5 vs 0.6)."""

from conftest import run_once

from repro.experiments.runners import evaluate_run

_METHODS = ("adavp", "mpdt-320", "mpdt-416", "mpdt-512", "mpdt-608")


def test_fig11_iou_threshold(benchmark, method_cache, eval_suite):
    def compute():
        table = {}
        for method in _METHODS:
            result = method_cache.get(method)
            strict = [
                evaluate_run(run, clip, iou_threshold=0.6)[0]
                for run, clip in zip(result.runs, eval_suite)
            ]
            table[method] = (result.accuracy, sum(strict) / len(strict))
        return table

    table = run_once(benchmark, compute)
    print()
    print(f"{'method':12s} IoU=0.5    IoU=0.6")
    for method, (loose, strict) in table.items():
        print(f"{method:12s} {loose:.3f}      {strict:.3f}")

    for method, (loose, strict) in table.items():
        # Stricter IoU identifies true positives more strictly (paper §VI-D).
        assert strict <= loose + 1e-9, method
    adavp_strict = table["adavp"][1]
    for method in _METHODS[1:]:
        # Small tolerance: AdaVP's margin over the best fixed setting is
        # within suite noise here (see EXPERIMENTS.md deviations).
        assert adavp_strict >= table[method][1] - 0.02, method
