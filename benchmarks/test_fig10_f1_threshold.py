"""Bench: regenerate Fig. 10 (accuracy under F1 thresholds 0.7 vs 0.75)."""

from conftest import run_once

from repro.experiments.runners import evaluate_run

_METHODS = ("adavp", "mpdt-320", "mpdt-416", "mpdt-512", "mpdt-608")


def test_fig10_f1_threshold(benchmark, method_cache, eval_suite):
    def compute():
        table = {}
        for method in _METHODS:
            result = method_cache.get(method)
            strict = [
                evaluate_run(run, clip, alpha=0.75)[0]
                for run, clip in zip(result.runs, eval_suite)
            ]
            table[method] = (result.accuracy, sum(strict) / len(strict))
        return table

    table = run_once(benchmark, compute)
    print()
    print(f"{'method':12s} alpha=0.70  alpha=0.75")
    for method, (loose, strict) in table.items():
        print(f"{method:12s} {loose:.3f}       {strict:.3f}")

    for method, (loose, strict) in table.items():
        # A stricter threshold can only reduce accuracy.
        assert strict <= loose + 1e-9, method
    # AdaVP still tops every fixed setting under the stricter threshold
    # (paper: the gain is even larger at alpha=0.75).
    adavp_strict = table["adavp"][1]
    for method in _METHODS[1:]:
        # Small tolerance: AdaVP's margin over the best fixed setting is
        # within suite noise here (see EXPERIMENTS.md deviations).
        assert adavp_strict >= table[method][1] - 0.02, method
