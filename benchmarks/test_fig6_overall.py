"""Bench: regenerate Fig. 6 (overall accuracy, 13 methods).

This is the paper's headline result.  Shape assertions:

- AdaVP is at least as accurate as every fixed-setting MPDT;
- the best fixed setting is 512 or its close neighbour 608 (paper: 512);
- MPDT beats MARLIN and no-tracking at every setting;
- AdaVP's gain over MARLIN is large (paper: +20.4 % .. +43.9 %).
"""

from conftest import run_once

from repro.experiments.fig6_overall import FIG6_METHODS, Fig6Result


def test_fig6_overall(benchmark, method_cache):
    def compute() -> Fig6Result:
        results = {name: method_cache.get(name) for name in FIG6_METHODS}
        return Fig6Result(results=results, alpha=0.7, iou_threshold=0.5)

    result = run_once(benchmark, compute)
    print()
    print(result.report())

    adavp = result.accuracy("adavp")
    # AdaVP ties or beats every fixed MPDT setting (paper: beats by 13-34%;
    # in this substrate the margin over the best fixed setting is small —
    # see EXPERIMENTS.md "Known deviations" — so a 1.5-point tolerance
    # absorbs suite-level noise while still catching regressions).
    for size in (320, 416, 512, 608):
        assert adavp >= result.accuracy(f"mpdt-{size}") - 0.015, size

    # The best fixed setting is one of the two largest (paper: 512).
    assert result.best_fixed_mpdt() in ("mpdt-512", "mpdt-608")
    assert result.accuracy("mpdt-512") > result.accuracy("mpdt-416")
    assert result.accuracy("mpdt-416") > result.accuracy("mpdt-320")

    # MPDT > MARLIN and > no-tracking at every setting (Fig. 6).
    for size in (320, 416, 512, 608):
        assert result.accuracy(f"mpdt-{size}") > result.accuracy(f"marlin-{size}")
        assert result.accuracy(f"mpdt-{size}") > result.accuracy(
            f"no-tracking-{size}"
        )

    # AdaVP's advantage over MARLIN is substantial.
    lo, hi = result.adavp_gain_over_marlin()
    assert lo > 0.10
    assert hi > 0.30
