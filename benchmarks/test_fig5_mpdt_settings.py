"""Bench: regenerate Fig. 5 (frame accuracy under two fixed settings)."""

import numpy as np
from conftest import run_once

from repro.experiments import fig5_fig9_traces


def test_fig5_mpdt_settings(benchmark):
    trace = run_once(benchmark, lambda: fig5_fig9_traces.run_fig5())
    print()
    print(trace.report(stride=20))

    small = np.asarray(trace.series_a)  # MPDT-YOLOv3-320
    large = np.asarray(trace.series_b)  # MPDT-YOLOv3-608
    # The paper's point: each setting wins on *some* frames — the small
    # setting right after its frequent calibrations, the large one right
    # after its accurate ones.
    assert np.mean(small > large + 0.05) > 0.05
    assert np.mean(large > small + 0.05) > 0.05
    # And the large setting's fresh detections reach higher peaks.
    assert large.max() >= small.max() - 1e-9
