"""Bench: MARLIN trigger-velocity sweep (paper §VI-A tuning procedure)."""

from conftest import run_once

from repro.experiments import marlin_tuning
from repro.experiments.workloads import quick_suite


def test_marlin_trigger_sweep(benchmark):
    suite = quick_suite(seed=919, frames=240)
    result = run_once(
        benchmark,
        lambda: marlin_tuning.run(
            setting=512, candidates=(0.6, 1.0, 1.5, 2.2, 3.2), suite=suite
        ),
    )
    print()
    print(result.report())

    accuracies = result.accuracies
    assert len(accuracies) == 5
    # The sweep is informative: the best threshold clearly beats the worst
    # (otherwise MARLIN's trigger would not matter at all).
    assert max(accuracies.values()) > min(accuracies.values())
    assert result.best_threshold in accuracies
