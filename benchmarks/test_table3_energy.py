"""Bench: regenerate Table III (energy consumption and accuracy, 8 methods)."""

from conftest import run_once

from repro.experiments.table3_energy import TABLE3_METHODS, Table3Result, _column


def test_table3_energy(benchmark, method_cache, eval_suite):
    def compute() -> Table3Result:
        video_seconds = sum(c.num_frames / c.fps for c in eval_suite)
        columns = {
            name: _column(name, method_cache.get(name), video_seconds)
            for name in TABLE3_METHODS
        }
        return Table3Result(columns=columns, video_hours=video_seconds / 3600.0)

    result = run_once(benchmark, compute)
    print()
    print(result.report())

    col = result.columns
    # --- Table III shape assertions ------------------------------------------
    # AdaVP is more accurate than MARLIN-512 at a modest energy premium.
    assert col["adavp"].accuracy > col["marlin-512"].accuracy
    assert col["adavp"].energy.total_wh < 2.0 * col["marlin-512"].energy.total_wh
    # MARLIN spends less than MPDT at the same setting (it idles the GPU).
    assert col["marlin-512"].energy.total_wh < col["mpdt-512"].energy.total_wh
    assert col["marlin-320"].energy.total_wh < col["mpdt-320"].energy.total_wh
    # Per-frame YOLOv3-608 is the most accurate and by far the most
    # expensive (paper: 14x AdaVP's energy, 10.3x latency).
    assert col["continuous-608"].accuracy > col["adavp"].accuracy
    assert col["continuous-608"].energy.total_wh > 6.0 * col["adavp"].energy.total_wh
    assert col["continuous-608"].latency_multiplier > 8.0
    # Continuous YOLOv3-320 runs ~7x real time (paper's "7x latency").
    assert 5.5 < col["continuous-320"].latency_multiplier < 9.0
    # Tiny is above real time (paper: 1.8x) and wildly inaccurate.
    assert 1.4 < col["continuous-tiny-320"].latency_multiplier < 2.4
    assert col["continuous-tiny-320"].accuracy < 0.3
    # Real-time methods stay near 1x.
    for name in ("adavp", "mpdt-320", "mpdt-512", "marlin-320", "marlin-512"):
        assert col[name].latency_multiplier < 1.25, name
