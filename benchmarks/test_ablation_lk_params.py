"""Ablation: Lucas-Kanade tracker parameters (pyramid depth, feature budget).

Design-choice checks from DESIGN.md: the 3-level pyramid is what lets the
tracker survive multi-pixel inter-frame motion, and a handful of features
per box is enough (the paper uses very few to save latency).
"""

from dataclasses import replace

import numpy as np
from conftest import run_once

from repro.detection.detector import Detection
from repro.geometry import iou
from repro.tracking.tracker import ObjectTracker, TrackerConfig
from repro.video.dataset import make_clip
from repro.vision.optical_flow import LKParams


def _decay_auc(
    config: TrackerConfig,
    scenario: str = "highway_surveillance",
    gap: int = 2,
) -> float:
    """Mean tracked IoU over a 20-frame window, averaged over repeats.

    ``gap`` is the tracking stride: larger gaps mean larger inter-frame
    displacement, which is what separates pyramidal from single-level LK.
    """
    values = []
    for rep in range(4):
        clip = make_clip(scenario, seed=818 + 13 * rep, num_frames=24)
        ann0 = clip.annotation(0)
        tracker = ObjectTracker(clip.frame, 320, 180, config, seed=rep)
        tracker.initialize(
            0, tuple(Detection(o.label, o.box, 0.9) for o in ann0.objects)
        )
        for j in range(gap, 22, gap):
            step = tracker.track_to(j)
            ann = clip.annotation(j)
            step_vals = [
                max((iou(d.box, o.box) for o in ann.objects), default=0.0)
                for d in step.detections
            ]
            if step_vals:
                values.append(float(np.mean(step_vals)))
    return float(np.mean(values))


def test_ablation_lk_params(benchmark):
    def compute():
        return {
            "default (3 levels, 10 feat)": _decay_auc(TrackerConfig()),
            # The pyramid comparison needs large per-hop motion: racetrack
            # objects at 3.2-5 px/frame tracked every 3rd frame move
            # 10-15 px per hop, beyond a single level's 7 px window.
            "3 levels, racetrack gap3": _decay_auc(
                TrackerConfig(), scenario="racetrack", gap=3
            ),
            "1 pyramid level, racetrack gap3": _decay_auc(
                replace(TrackerConfig(), lk=LKParams(pyramid_levels=1)),
                scenario="racetrack", gap=3,
            ),
            "2 features/box": _decay_auc(
                replace(TrackerConfig(), max_features_per_object=2)
            ),
        }

    results = run_once(benchmark, compute)
    print()
    for name, value in results.items():
        print(f"{name:28s} mean tracked IoU = {value:.3f}")

    default = results["default (3 levels, 10 feat)"]
    # Removing the pyramid breaks tracking of large per-hop motion outright.
    assert (
        results["1 pyramid level, racetrack gap3"]
        < results["3 levels, racetrack gap3"] - 0.1
    )
    # A tiny feature budget degrades robustness but not catastrophically
    # (the paper leans on this to keep tracking latency in the 7-20 ms band).
    assert results["2 features/box"] <= default + 0.02
    assert results["2 features/box"] > 0.3
