"""Ablation: adaptive tracking-frame selection vs a pinned fraction.

The paper predicts the per-cycle trackable count from the previous cycle
(p = h/f).  This bench compares that against pinning the fraction to a
wrong constant: too low wastes tracker budget (more held frames), too
high plans work that gets cancelled mid-cycle.
"""

from conftest import run_once

from repro.core.config import PipelineConfig
from repro.experiments.runners import run_method_on_suite
from repro.experiments.workloads import quick_suite


def test_ablation_frame_selection(benchmark):
    suite = quick_suite(seed=515, frames=240)

    def compute():
        out = {}
        out["adaptive"] = run_method_on_suite("mpdt-512", suite, keep_runs=True)
        for fraction in (0.15, 0.95):
            config = PipelineConfig(fixed_tracking_fraction=fraction)
            out[f"fixed-{fraction}"] = run_method_on_suite(
                "mpdt-512", suite, config, keep_runs=True
            )
        return out

    results = run_once(benchmark, compute)
    print()
    for name, result in results.items():
        held = sum(r.source_counts()["held"] for r in result.runs)
        cancelled = sum(
            sum(c.planned_tracked - c.tracked for c in r.cycles) for r in result.runs
        )
        print(
            f"{name:12s} acc={result.accuracy:.3f} held={held} "
            f"cancelled_tasks={cancelled}"
        )

    # A deliberately low pinned fraction leaves more frames held...
    held_low = sum(
        r.source_counts()["held"] for r in results["fixed-0.15"].runs
    )
    held_adaptive = sum(
        r.source_counts()["held"] for r in results["adaptive"].runs
    )
    assert held_low > held_adaptive
    # ...a deliberately high one gets its plans cancelled far more often.
    cancelled_high = sum(
        sum(c.planned_tracked - c.tracked for c in r.cycles)
        for r in results["fixed-0.95"].runs
    )
    cancelled_adaptive = sum(
        sum(c.planned_tracked - c.tracked for c in r.cycles)
        for r in results["adaptive"].runs
    )
    assert cancelled_high > 2 * max(cancelled_adaptive, 1)
    # And the adaptive rule is at least as accurate as the bad constants.
    assert results["adaptive"].accuracy >= results["fixed-0.15"].accuracy - 0.03
