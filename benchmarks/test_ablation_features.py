"""Ablation: Shi-Tomasi good-features vs FAST as the tracker's detector.

The paper §IV-C evaluated several feature detectors and chose *good
features to track*.  This bench reruns that comparison on the synthetic
substrate: same tracker, same clips, only the corner detector swapped.
"""

from dataclasses import replace

from conftest import run_once

from repro.core.config import PipelineConfig
from repro.experiments.runners import run_method_on_suite
from repro.experiments.workloads import quick_suite
from repro.tracking.tracker import TrackerConfig


def test_ablation_feature_detector(benchmark):
    suite = quick_suite(seed=1021, frames=240)

    def compute():
        shi_tomasi = run_method_on_suite("mpdt-512", suite)
        config = PipelineConfig(
            tracker=replace(TrackerConfig(), feature_detector="fast")
        )
        fast = run_method_on_suite("mpdt-512", suite, config)
        return shi_tomasi, fast

    shi_tomasi, fast = run_once(benchmark, compute)
    print()
    print(f"good-features (paper's choice): acc={shi_tomasi.accuracy:.3f}")
    print(f"FAST:                           acc={fast.accuracy:.3f}")

    # Both detectors must produce a working tracker...
    assert fast.accuracy > 0.15
    # ...and the paper's choice should not be (meaningfully) worse.
    assert shi_tomasi.accuracy >= fast.accuracy - 0.03
