"""Extension bench: multi-model adaptation (full YOLOv3 <-> tiny).

The paper §IV-D3 argues for switching input sizes rather than models
because models cannot be co-resident in mobile memory and reloading is
expensive.  This bench measures that claim: a policy allowed to drop to
YOLOv3-tiny on extreme motion pays the reload latency and tiny's ~0.3 F1,
and must not beat the paper's size-only AdaVP.
"""

from conftest import run_once

from repro.core.adavp import AdaVP
from repro.core.config import PipelineConfig
from repro.core.mpdt import MPDTPipeline
from repro.core.multimodel import MultiModelPolicy
from repro.core.pretrained import DEFAULT_THRESHOLD_TABLE
from repro.experiments.runners import evaluate_run
from repro.experiments.workloads import quick_suite
from repro.video.dataset import make_clip


def test_extension_multimodel(benchmark):
    suite = quick_suite(seed=1122, frames=240)
    # Plus one extreme-speed clip where tiny's fast cycle could plausibly pay.
    extreme = make_clip("racetrack", seed=1123, num_frames=240)
    clips = list(suite.clips) + [extreme]

    def compute():
        results = {}
        for label, factory in (
            ("adavp (sizes only)", lambda: AdaVP()._pipeline),
            (
                "multi-model (aggressive tiny)",
                lambda: MPDTPipeline(
                    MultiModelPolicy(DEFAULT_THRESHOLD_TABLE, tiny_velocity=3.0),
                    PipelineConfig(),
                    method_name="multimodel",
                ),
            ),
        ):
            accuracies = []
            tiny_cycles = 0
            for clip in clips:
                run = factory().run(clip)
                accuracy, _ = evaluate_run(run, clip)
                accuracies.append(accuracy)
                tiny_cycles += run.profile_usage().get("yolov3-tiny-320", 0)
            results[label] = (sum(accuracies) / len(accuracies), tiny_cycles)
        return results

    results = run_once(benchmark, compute)
    print()
    for label, (accuracy, tiny_cycles) in results.items():
        print(f"{label:32s} acc={accuracy:.3f} tiny_cycles={tiny_cycles}")

    size_only = results["adavp (sizes only)"][0]
    multimodel, tiny_cycles = results["multi-model (aggressive tiny)"]
    # The aggressive policy must actually have tried tiny on the extreme clip...
    assert tiny_cycles > 0
    # ...and, per the paper's argument, it should not beat size-only AdaVP.
    assert size_only >= multimodel - 0.02
