"""Thin shim so editable installs work without the `wheel` package.

`pip install -e .` uses PEP 517 build_editable, which needs bdist_wheel;
in offline environments without `wheel`, `python setup.py develop` (or the
.pth fallback documented in README) installs the package equivalently.
"""
from setuptools import setup

setup()
