"""Traffic monitoring: AdaVP vs the baselines on highway surveillance.

Run with::

    python examples/highway_monitor.py

The paper's motivating application: a camera above a highway must detect
vehicles continuously and in real time.  This example runs AdaVP, the best
fixed-setting MPDT, MARLIN (sequential detect-then-track) and the
detection-only baseline over a small highway workload, then prints the
accuracy/energy comparison — a miniature of the paper's Fig. 6/Table III.
"""

from repro.experiments.report import format_table
from repro.experiments.runners import run_method_on_suite
from repro.video.dataset import VideoSuite, make_clip


def main() -> None:
    suite = VideoSuite(
        name="highway-monitor",
        clips=[
            make_clip("highway_surveillance", seed=11, num_frames=300),
            make_clip("highway_surveillance", seed=12, num_frames=300),
            make_clip("intersection", seed=13, num_frames=300),
        ],
    )
    print(suite.describe())
    print()

    methods = ("adavp", "mpdt-512", "marlin-512", "no-tracking-512")
    rows = []
    for name in methods:
        result = run_method_on_suite(name, suite)
        energy = result.energy()
        rows.append(
            (
                name,
                result.accuracy,
                result.mean_f1,
                round(energy.total_wh * 3600, 1),
            )
        )
        print(f"ran {name}: accuracy={result.accuracy:.3f}")

    print()
    print(
        format_table(
            "Highway monitoring — accuracy and energy",
            ("method", "accuracy", "mean_F1", "energy_J"),
            rows,
        )
    )
    best = max(rows, key=lambda r: r[1])
    print(f"\nmost accurate: {best[0]}")


if __name__ == "__main__":
    main()
