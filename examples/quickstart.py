"""Quickstart: run AdaVP on a synthetic clip and inspect the results.

Run with::

    python examples/quickstart.py

This builds a 10-second synthetic intersection video (the library ships 14
scenario families mirroring the paper's corpus), processes it with AdaVP —
the parallel detection+tracking pipeline with runtime model adaptation —
and prints the paper's accuracy metric alongside how the pipeline spent
its time.
"""

from repro.core import AdaVP
from repro.experiments.runners import evaluate_run
from repro.video import make_clip


def main() -> None:
    # 1. A synthetic video: 10 s of a traffic intersection at 30 FPS.
    clip = make_clip("intersection", seed=7, num_frames=300)
    print(f"clip: {clip.name} ({clip.num_frames} frames @ {clip.fps:g} fps)")
    print(f"objects in frame 0: {[o.label for o in clip.annotation(0).objects]}")

    # 2. AdaVP with the pretrained adaptation thresholds.
    system = AdaVP()
    run = system.process(clip)

    # 3. The paper's metric: fraction of frames with F1 > 0.7 (IoU 0.5).
    accuracy, f1 = evaluate_run(run, clip)
    print(f"\naccuracy (frames with F1>0.7): {accuracy:.3f}")
    print(f"mean per-frame F1:             {f1.mean():.3f}")

    # 4. How the pipeline spent the video.
    counts = run.source_counts()
    print(
        f"\nframes by source: {counts['detector']} detected, "
        f"{counts['tracker']} tracked, {counts['held']} held, "
        f"{counts['none']} warm-up"
    )
    print(f"detection cycles: {len(run.cycles)}")
    usage = run.profile_usage()
    print("model-setting usage:", {k: v for k, v in sorted(usage.items())})
    switches = run.cycles_between_switches()
    print(f"setting switches: {len(switches)}")

    # 5. Energy, via the TX2 power model (Table III).
    from repro.metrics import TX2_POWER_MODEL

    energy = TX2_POWER_MODEL.breakdown(run.activity)
    print(f"\nenergy for this clip: {energy.total_wh * 3600:.1f} J "
          f"(GPU {energy.gpu_wh * 3600:.1f} J, CPU {energy.cpu_wh * 3600:.1f} J)")


if __name__ == "__main__":
    main()
