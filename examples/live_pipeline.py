"""Live threaded pipeline: the paper's three-thread structure, for real.

Run with::

    python examples/live_pipeline.py

Every experiment in this repository uses the deterministic virtual-time
simulator, but the paper's system runs real threads on a TX2.  This demo
executes the same MPDT structure with actual Python threads — a camera
thread feeding the frame buffer, a detector thread on the (simulated) GPU,
and a tracker thread that gets cancelled whenever a fresh detection lands —
at 5x speed, then reports what happened.
"""

import time

from repro.core import AdaVP
from repro.experiments.runners import evaluate_run
from repro.runtime.realtime import LiveExecutor
from repro.video import make_clip


def main() -> None:
    clip = make_clip("city_street", seed=31, num_frames=240)
    print(f"clip: {clip.name}, {clip.num_frames} frames "
          f"({clip.num_frames / clip.fps:.0f} s of video)")

    executor = LiveExecutor(AdaVP().policy, time_scale=0.2)
    print("running the threaded pipeline at 5x speed ...")
    started = time.monotonic()
    results, stats = executor.run(clip)
    elapsed = time.monotonic() - started

    print(f"\nfinished in {elapsed:.1f} s wall clock")
    print(f"detections:                {stats.detections}")
    print(f"tracked frames:            {stats.tracked_frames}")
    print(f"tracking tasks cancelled:  {stats.cancelled_tracking_tasks}")
    print(f"setting switches:          {stats.switches}")
    print(f"setting usage:             {stats.profile_usage}")

    sources = {}
    for result in results:
        sources[result.source] = sources.get(result.source, 0) + 1
    print(f"frames by source:          {sources}")

    # Offline evaluation of what the live run displayed.
    class _Run:
        def detections_per_frame(self):
            return [r.detections for r in results]

    from repro.metrics import frame_f1_series, video_accuracy

    f1 = frame_f1_series(_Run().detections_per_frame(), clip.scene.annotations())
    print(f"\naccuracy (F1>0.7): {video_accuracy(f1):.3f}  mean F1: {f1.mean():.3f}")
    print("(thread scheduling makes this vary slightly between runs — the "
          "experiments use the deterministic simulator instead)")


if __name__ == "__main__":
    main()
