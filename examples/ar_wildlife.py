"""AR-style wildlife filming: watch the model adaptation react.

Run with::

    python examples/ar_wildlife.py

An augmented-reality overlay on a handheld wildlife shoot: the camera is
calm while the animals graze, then they bolt.  This example builds such a
two-phase clip, runs AdaVP, and prints the per-cycle timeline — measured
content velocity (Eq. 3) and the input size the adaptation chose — so you
can see the system downshift to a faster model exactly when the scene
speeds up (and what that buys over a fixed setting).
"""

from repro.core import AdaVP, FixedSettingPolicy, MPDTPipeline
from repro.experiments.runners import evaluate_run
from repro.experiments.workloads import make_multiphase_clip


def main() -> None:
    clip = make_multiphase_clip(
        "wildlife",
        seed=21,
        num_frames=360,
        phases=[(0.0, 0.4, 0.6), (0.5, 2.2, 1.6)],  # grazing, then bolting
        name="wildlife-two-phase",
    )
    print(f"clip: {clip.name}, {clip.num_frames} frames; dynamics change at "
          f"frame {clip.config.phases[1].start_frame}")

    system = AdaVP()
    run = system.process(clip)

    print("\nper-cycle adaptation timeline:")
    print(f"{'cycle':>5} {'frame':>6} {'setting':>12} {'velocity':>9} {'switch':>7}")
    for cycle in run.cycles:
        velocity = "-" if cycle.velocity is None else f"{cycle.velocity:.2f}"
        switch = "->" + cycle.next_profile.split("-")[-1] if cycle.switched else ""
        print(
            f"{cycle.index:>5} {cycle.detect_frame:>6} "
            f"{cycle.profile_name:>12} {velocity:>9} {switch:>7}"
        )

    adavp_acc, _ = evaluate_run(run, clip)
    fixed_run = MPDTPipeline(FixedSettingPolicy(608)).run(clip)
    fixed_acc, _ = evaluate_run(fixed_run, clip)
    print(f"\nAdaVP accuracy:      {adavp_acc:.3f}")
    print(f"fixed 608 accuracy:  {fixed_acc:.3f}")
    print("(the fixed large model suffers once the animals bolt; AdaVP "
          "downshifts and keeps calibrating the tracker)")


if __name__ == "__main__":
    main()
