"""Reproduce every paper artifact at a reduced scale, in one run.

Run with::

    python examples/reproduce_paper.py            # ~10-15 min on a laptop

Prints Fig. 1, Fig. 2, Table II, Fig. 6 (subset of methods), Fig. 7/8 and
Table III in sequence.  The benchmark suite (``pytest benchmarks/
--benchmark-only``) is the full-scale version with shape assertions.
"""

import time

from repro.experiments import (
    fig1_detector_profile,
    fig2_tracking_decay,
    table2_latency,
    table3_energy,
)
from repro.experiments.fig6_overall import run as run_fig6
from repro.experiments.fig7_fig8_adaptation import run as run_fig78
from repro.experiments.workloads import evaluation_suite


def main() -> None:
    started = time.time()

    def stamp(label: str) -> None:
        print(f"\n===== {label} ({time.time() - started:.0f}s) " + "=" * 20)

    stamp("Fig. 1")
    print(fig1_detector_profile.run(num_frames=1000).report())

    stamp("Fig. 2")
    print(fig2_tracking_decay.run(repeats=5).report())

    stamp("Table II")
    print(table2_latency.run(num_frames=150).report())

    suite = evaluation_suite(frames=240)

    stamp("Fig. 6 (key methods)")
    print(
        run_fig6(
            suite=suite,
            methods=(
                "adavp", "mpdt-320", "mpdt-416", "mpdt-512", "mpdt-608",
                "marlin-512", "no-tracking-512",
            ),
        ).report()
    )

    stamp("Fig. 7 / Fig. 8")
    print(run_fig78(suite=suite).report())

    stamp("Table III")
    print(
        table3_energy.run(
            suite=suite,
            methods=(
                "adavp", "mpdt-512", "marlin-512",
                "continuous-tiny-320", "continuous-320",
            ),
        ).report()
    )

    print(f"\nall artifacts regenerated in {time.time() - started:.0f}s")


if __name__ == "__main__":
    main()
